//! A minimal waker-based futures runtime: oneshot channels, a small
//! thread-pool executor, and a timer — everything `wsm-svc` needs to run
//! async map calls, hand-rolled so the workspace stays dependency-free.
//!
//! ## Why not a real runtime
//!
//! The build environment is offline (no registry), and the service layer
//! needs very little: `Future` is a language item, wakers are constructible
//! safely via the [`Wake`] trait (no `RawWaker` vtable, so the crate keeps
//! `#![forbid(unsafe_code)]`), and the executor below is ~150 lines.  The
//! point of the exercise is the *hand-off* between the combiner and the
//! awaiting task ([`wsm_core::ResultCell::set_waker`]), not the runtime.
//!
//! ## Executor shape
//!
//! [`Executor::new`] spawns a fixed pool of worker threads sharing one run
//! queue (a mutexed `VecDeque` — contention on it is dwarfed by the map work
//! each poll performs) and one timer heap.  A task is an `Arc` holding its
//! boxed future; the task *is* its own waker ([`Wake`] impl), and a `queued`
//! flag dedupes concurrent wakes.  Workers bracket every poll with
//! [`wsm_core::ServiceTaskGuard`], so map code reached from a poll knows it
//! must not park the worker (see `wsm_core::context`).
//!
//! A task woken *while it is being polled* is re-enqueued immediately; the
//! worker that pops it then briefly blocks on the task's future mutex until
//! the in-flight poll finishes.  That serialization is momentary and safe
//! (polls never wait on other polls), and it keeps the state machine to one
//! atomic flag.
//!
//! [`block_on`] drives a future on the calling thread with a park/unpark
//! waker (`std::thread` park tokens are sticky, so a wake that lands before
//! the park is never lost); it too marks the thread as a service task while
//! polling.  The park uses a bounded timeout purely as a hang backstop —
//! correctness comes from the wake discipline, which the model checker
//! covers.

use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use wsm_core::ServiceTaskGuard;

/// Upper bound on a worker's idle wait (and `block_on`'s park).  Purely a
/// backstop: wakes and timer registrations notify the condvar, but a
/// registration can race a worker's empty-queue check, and the bound turns
/// that lost notify into at most one extra wait round.
const IDLE_WAIT: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

/// Error returned by a [`Receiver`] whose [`Sender`] was dropped without
/// sending.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("oneshot sender dropped without sending")
    }
}

struct OneshotInner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    closed: bool,
}

/// Sending half of a single-value channel; consumed by [`Sender::send`].
pub struct Sender<T>(Arc<Mutex<OneshotInner<T>>>);

/// Receiving half of a single-value channel: a future resolving to the sent
/// value, or [`Canceled`] if the sender dropped first.
pub struct Receiver<T>(Arc<Mutex<OneshotInner<T>>>);

/// A single-value channel: the async hand-off primitive for task results.
pub fn oneshot<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Mutex::new(OneshotInner {
        value: None,
        waker: None,
        closed: false,
    }));
    (Sender(Arc::clone(&inner)), Receiver(inner))
}

impl<T> Sender<T> {
    /// Delivers the value and wakes the receiver.  Consumes the sender — a
    /// oneshot sends once.
    pub fn send(self, value: T) {
        let waker = {
            let mut inner = self.0.lock().expect("oneshot mutex");
            inner.value = Some(value);
            inner.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut inner = self.0.lock().expect("oneshot mutex");
            inner.closed = true;
            inner.waker.take()
        };
        // After a send this is a no-op (the waker was already taken); after a
        // drop-without-send it tells the receiver it will never resolve.
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.0.lock().expect("oneshot mutex");
        if let Some(value) = inner.value.take() {
            return Poll::Ready(Ok(value));
        }
        if inner.closed {
            return Poll::Ready(Err(Canceled));
        }
        match &mut inner.waker {
            Some(existing) => existing.clone_from(cx.waker()),
            none => *none = Some(cx.waker().clone()),
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct Task {
    exec: Weak<Core>,
    /// `Some` until the future completes.  Also the poll lock: the worker
    /// holding it is the one polling this task.
    future: Mutex<Option<BoxFuture>>,
    /// True while the task sits in the run queue; dedupes concurrent wakes.
    queued: AtomicBool,
}

impl Task {
    fn schedule(self: Arc<Self>) {
        // ord: AcqRel — the winning swap claims the sole queue slot for this
        // task and orders it with the flag clear in `poll_task`.
        if self.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(core) = self.exec.upgrade() {
            core.queue.lock().expect("run queue mutex").push_back(self);
            core.idle.notify_one();
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        Arc::clone(self).schedule();
    }
}

/// One registered timer: min-heap by deadline (sequence breaks ties so
/// entries never compare equal).
struct TimerEntry {
    deadline: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // on top.
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Core {
    queue: Mutex<VecDeque<Arc<Task>>>,
    idle: Condvar,
    timers: Mutex<BinaryHeap<TimerEntry>>,
    timer_seq: AtomicU64,
    shutdown: AtomicBool,
}

/// A fixed pool of worker threads polling spawned tasks.  Dropping the
/// executor shuts the workers down; unfinished tasks are dropped, which
/// cancels their [`JoinHandle`]s.
pub struct Executor {
    core: Arc<Core>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Worker count from `WSM_SVC_WORKERS` (default 2, minimum 1); garbage warns
/// once on stderr and falls back to the default.
fn workers_from_env() -> usize {
    wsm_core::env::parse("WSM_SVC_WORKERS", "a worker count >= 1", 2, |&w| w >= 1)
}

impl Executor {
    /// An executor with the worker count taken from `WSM_SVC_WORKERS`.
    pub fn from_env() -> Self {
        Self::new(workers_from_env())
    }

    /// An executor with exactly `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        let core = Arc::new(Core {
            queue: Mutex::new(VecDeque::new()),
            idle: Condvar::new(),
            timers: Mutex::new(BinaryHeap::new()),
            timer_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("wsm-svc-worker-{i}"))
                    .spawn(move || worker_loop(&core))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { core, workers }
    }

    /// Spawns a future onto the pool, returning a handle that resolves to
    /// its output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (tx, rx) = oneshot();
        let task = Arc::new(Task {
            exec: Arc::downgrade(&self.core),
            future: Mutex::new(Some(Box::pin(async move {
                tx.send(future.await);
            }))),
            queued: AtomicBool::new(false),
        });
        task.schedule();
        JoinHandle(rx)
    }

    /// A future that resolves once `duration` has elapsed.  The timer lives
    /// in this executor's heap, so the executor must outlive the sleep.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.sleep_until(Instant::now() + duration)
    }

    /// A future that resolves at `deadline` (immediately if already past).
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        self.timer().sleep_until(deadline)
    }

    /// A cloneable timer handle for tasks that need to sleep.  Holds only a
    /// weak reference: tasks must NOT capture the `Executor` itself (a
    /// worker dropping the last `Arc<Executor>` would try to join its own
    /// thread in `Drop`), and a handle outliving the executor degrades to
    /// cooperative re-polling instead of hanging.
    pub fn timer(&self) -> TimerHandle {
        TimerHandle {
            core: Arc::downgrade(&self.core),
        }
    }
}

/// Cloneable, executor-independent handle for creating [`Sleep`] futures
/// inside tasks.  See [`Executor::timer`].
#[derive(Clone)]
pub struct TimerHandle {
    core: Weak<Core>,
}

impl TimerHandle {
    /// A future that resolves once `duration` has elapsed.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.sleep_until(Instant::now() + duration)
    }

    /// A future that resolves at `deadline` (immediately if already past).
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        Sleep {
            core: self.core.clone(),
            deadline,
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // ord: Release — pairs with the workers' Acquire loads; everything
        // queued before shutdown is visible to the draining check.
        self.core.shutdown.store(true, Ordering::Release);
        {
            let _queue = self.core.queue.lock().expect("run queue mutex");
            self.core.idle.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(core: &Arc<Core>) {
    loop {
        // ord: Acquire — pairs with the Release store in `Executor::drop`.
        if core.shutdown.load(Ordering::Acquire) {
            return;
        }

        // Fire due timers.  Wakers are invoked after the heap lock drops:
        // waking re-enters the run queue, never the timer heap.
        let mut due = Vec::new();
        let mut next_deadline = None;
        {
            let mut timers = core.timers.lock().expect("timer heap mutex");
            let now = Instant::now();
            while let Some(top) = timers.peek() {
                if top.deadline <= now {
                    due.push(timers.pop().expect("peeked entry").waker);
                } else {
                    next_deadline = Some(top.deadline);
                    break;
                }
            }
        }
        for waker in due {
            waker.wake();
        }

        let task = core.queue.lock().expect("run queue mutex").pop_front();
        if let Some(task) = task {
            poll_task(&task);
            continue;
        }

        // Idle: wait for a wake, capped by the next timer deadline (and the
        // IDLE_WAIT backstop against a notify racing the empty check above).
        let timeout = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(IDLE_WAIT)
            .min(IDLE_WAIT);
        let queue = core.queue.lock().expect("run queue mutex");
        // ord: Acquire — same pairing as the loop-top check: a shutdown
        // published before the drop's notify_all must be seen here, or the
        // worker would wait out one extra IDLE_WAIT round.
        if queue.is_empty() && !core.shutdown.load(Ordering::Acquire) {
            let _ = core
                .idle
                .wait_timeout(queue, timeout)
                .expect("run queue mutex");
        }
    }
}

fn poll_task(task: &Arc<Task>) {
    // Clear the queue slot *before* polling: a wake arriving mid-poll must
    // re-enqueue the task so progress made by that wake is observed.
    // ord: Release — pairs with the AcqRel swap in `Task::schedule`.
    task.queued.store(false, Ordering::Release);
    let waker = Waker::from(Arc::clone(task));
    let mut cx = Context::from_waker(&waker);
    let mut slot = task.future.lock().expect("task future mutex");
    let Some(future) = slot.as_mut() else {
        return; // already completed; a late wake popped a stale queue entry
    };
    // Map code reached from this poll must never park this worker.
    let _guard = ServiceTaskGuard::new();
    if future.as_mut().poll(&mut cx).is_ready() {
        *slot = None;
    }
}

/// Handle to a spawned task; a future resolving to the task's output.
///
/// # Panics
///
/// Resolves by panicking if the executor shut down before the task finished
/// (the task's future — and its result sender — were dropped).
pub struct JoinHandle<T>(Receiver<T>);

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.0).poll(cx) {
            Poll::Ready(Ok(value)) => Poll::Ready(value),
            Poll::Ready(Err(Canceled)) => {
                panic!("service task canceled: executor shut down before it completed")
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Timer future from [`Executor::sleep`] / [`Executor::sleep_until`].
///
/// Each poll past the deadline resolves; each poll before it re-registers
/// the current waker in the executor's timer heap (stale entries from
/// earlier polls fire as spurious wakes, which is harmless).
pub struct Sleep {
    core: Weak<Core>,
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        if let Some(core) = self.core.upgrade() {
            // ord: Relaxed — the sequence only breaks heap ties.
            let seq = core.timer_seq.fetch_add(1, Ordering::Relaxed);
            core.timers
                .lock()
                .expect("timer heap mutex")
                .push(TimerEntry {
                    deadline: self.deadline,
                    seq,
                    waker: cx.waker().clone(),
                });
            // Nudge an idle worker so it recomputes its wait deadline.  Taking
            // the queue lock first shrinks the race with a worker's
            // empty-queue check; IDLE_WAIT bounds what remains.
            let _queue = core.queue.lock().expect("run queue mutex");
            core.idle.notify_one();
        } else {
            // Executor gone: degrade to cooperative re-polling rather than
            // hanging forever.
            cx.waker().wake_by_ref();
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// block_on
// ---------------------------------------------------------------------------

struct ThreadWaker(std::thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a future to completion on the calling thread.
///
/// The thread is marked as a service task while polling (the map's blocking
/// paths then never park it — see `wsm_core::context`); between polls it
/// parks on the std park token, which is sticky, so a wake delivered before
/// the park is never lost.  The park carries a small timeout purely as a
/// backstop against wake-discipline bugs.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        {
            let _guard = ServiceTaskGuard::new();
            if let Poll::Ready(value) = future.as_mut().poll(&mut cx) {
                return value;
            }
        }
        std::thread::park_timeout(IDLE_WAIT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn oneshot_roundtrip_through_block_on() {
        let (tx, rx) = oneshot();
        tx.send(17u64);
        assert_eq!(block_on(rx), Ok(17));
    }

    #[test]
    fn oneshot_cancel_on_sender_drop() {
        let (tx, rx) = oneshot::<u64>();
        drop(tx);
        assert_eq!(block_on(rx), Err(Canceled));
    }

    #[test]
    fn oneshot_cross_thread_wakes_receiver() {
        let (tx, rx) = oneshot();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10)); // lint: allow(thread_sleep) — test stimulus delay, not synchronization
            tx.send(5u32);
        });
        assert_eq!(block_on(rx), Ok(5));
        sender.join().unwrap();
    }

    #[test]
    fn executor_runs_spawned_tasks_to_completion() {
        let exec = Executor::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let counter = Arc::clone(&counter);
                exec.spawn(async move {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i * 2
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(block_on(handle), i * 2);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn sleep_respects_its_deadline() {
        let exec = Executor::new(1);
        let start = Instant::now();
        let sleep = exec.sleep(Duration::from_millis(20));
        block_on(exec.spawn(async move {
            sleep.await;
        }));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn tasks_see_service_context_and_callers_do_not() {
        let exec = Executor::new(1);
        let inside = block_on(exec.spawn(async { wsm_core::in_service_task() }));
        assert!(inside, "executor polls must run in service-task context");
        assert!(
            !wsm_core::in_service_task(),
            "context must not leak off the workers"
        );
    }
}
