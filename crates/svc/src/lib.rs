//! # wsm-svc — async service front-end for the working-set maps
//!
//! Turns the flat-combining [`ConcurrentMap`] / [`ShardedMap`] into an
//! *await-able* key-value service: [`WsMapService::batch_search`],
//! [`WsMapService::batch_insert`] and [`WsMapService::batch_remove`] return
//! futures, so thousands of in-flight client requests can share a handful of
//! executor workers instead of pinning one parked OS thread each.
//!
//! ```text
//!   client tasks ──┐ submit (non-blocking deposit into ParallelBuffer)
//!   client tasks ──┼──────────────► per-op ResultCell(+ waker)
//!   client tasks ──┘                      ▲
//!          poll: pump() — one combiner    │ fill() wakes the task
//!          election attempt; the polling  │ whose op completed
//!          task may BECOME the combiner ──┘
//! ```
//!
//! This is the batching-service pattern (cf. the findex `BufferedMemory`
//! layer): the [`wsm_core::ParallelBuffer`] already plays the accumulator
//! role, so the async layer only needs (a) a non-blocking deposit
//! ([`ServiceBackend::submit`]), (b) a non-blocking combiner election
//! attempt ([`BackendDriver::pump`]), and (c) a completion signal — the
//! result cell's waker hand-off ([`wsm_core::ResultCell::set_waker`]).
//!
//! ## The poll protocol
//!
//! [`BatchCall::poll`] is where flat combining meets async:
//!
//! 1. **Harvest** every cell that filled since the last poll; all filled →
//!    `Ready`.
//! 2. In `WSM_HANDOFF=waker` mode, **register** the task's waker on each
//!    unfilled cell, then **re-probe** (mandatory: a fill racing the
//!    registration has already taken — or never saw — the waker; only the
//!    re-probe observes its stamp).
//! 3. **Pump**: one non-blocking combiner-election attempt.  The polling
//!    task may win and execute the batch inline — the async task *is* a
//!    flat-combining participant, not just a waiter.
//! 4. Still unfilled: in waker mode, return `Pending` *without* a self-wake
//!    if the backend's buffer is empty (the ops sit in an in-flight batch
//!    whose `fill` will wake us — parking the task is free); self-wake if
//!    ops are still buffered (another election attempt is needed and nobody
//!    is obliged to make it).  In `doorbell`/`cell` modes there is no wake
//!    signal for tasks, so the future always self-wakes — cooperative
//!    busy-polling whose cost experiment E21 measures against waker mode.
//!
//! ## Knobs
//!
//! * `WSM_SVC_WORKERS` — executor worker threads ([`Executor::from_env`],
//!   default 2).
//! * `WSM_SVC_MAX_BATCH` — largest chunk one service call deposits at once
//!   (default 1024); larger batches split into several deposits so a single
//!   giant call cannot monopolize the publication rings.
//! * `WSM_HANDOFF=waker` — selects the waker hand-off on the *backend map*
//!   (see [`Handoff`]); the service works in all three modes, waker mode is
//!   the one that parks idle tasks for free.
//!
//! Blocking `ConcurrentMap`/`ShardedMap` calls issued from inside a service
//! task degrade safely rather than deadlocking: see `wsm_core::context` and
//! the `wsm-shard` dispatch discipline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;

pub use exec::{
    block_on, oneshot, Canceled, Executor, JoinHandle, Receiver, Sender, Sleep, TimerHandle,
};

use std::cell::Cell;
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};

use wsm_core::{BatchedMap, ConcurrentMap, Handoff, OpResult, Operation, ResultCell};
use wsm_shard::{Partitioner, ShardedMap};

/// Distinct-per-thread submitter hint for deposits made through the service
/// (picks a publication ring; affects contention, never correctness).
fn caller_hint() -> usize {
    static NEXT_HINT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: Cell<Option<usize>> = const { Cell::new(None) };
    }
    HINT.with(|hint| match hint.get() {
        Some(h) => h,
        None => {
            // ord: Relaxed — the counter only hands out distinct ring hints;
            // nothing is published through it.
            let h = NEXT_HINT.fetch_add(1, Ordering::Relaxed);
            hint.set(Some(h));
            h
        }
    })
}

/// The key/value-independent half of a service backend: what a pending
/// [`BatchCall`] needs to drive completion after its ops are deposited.
pub trait BackendDriver: Send + Sync {
    /// One non-blocking combiner-election attempt (the caller may become a
    /// combiner and execute batches inline; it never waits for one).
    fn pump(&self);
    /// True while deposited operations sit unclaimed in a publication
    /// buffer.  A future whose cells are empty while this is `false` knows
    /// its ops are in an in-flight batch and a `fill` is coming.
    fn buffered(&self) -> bool;
    /// The backend's waiter hand-off mode (decides whether futures park on
    /// cell wakers or cooperatively self-wake — see the crate docs).
    fn handoff(&self) -> Handoff;
}

/// A map the service can submit operation batches to without blocking.
pub trait ServiceBackend<K, V>: BackendDriver {
    /// Deposits `ops` and returns their result cells in operation order.
    /// Must not block and must not run a combiner.
    fn submit(&self, ops: Vec<Operation<K, V>>) -> Vec<Arc<ResultCell<OpResult<V>>>>;
}

impl<K, V, M> BackendDriver for ConcurrentMap<K, V, M>
where
    K: Ord + Clone + Send,
    V: Clone + Send,
    M: BatchedMap<K, V> + Send,
{
    fn pump(&self) {
        ConcurrentMap::pump(self);
    }

    fn buffered(&self) -> bool {
        ConcurrentMap::buffered(self)
    }

    fn handoff(&self) -> Handoff {
        ConcurrentMap::handoff(self)
    }
}

impl<K, V, M> ServiceBackend<K, V> for ConcurrentMap<K, V, M>
where
    K: Ord + Clone + Send,
    V: Clone + Send,
    M: BatchedMap<K, V> + Send,
{
    fn submit(&self, ops: Vec<Operation<K, V>>) -> Vec<Arc<ResultCell<OpResult<V>>>> {
        self.submit_batch(caller_hint(), ops)
    }
}

impl<K, V, M, P> BackendDriver for ShardedMap<K, V, M, P>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    M: BatchedMap<K, V> + Send,
    P: Partitioner<K> + Send + Sync,
{
    fn pump(&self) {
        ShardedMap::pump(self);
    }

    fn buffered(&self) -> bool {
        ShardedMap::buffered(self)
    }

    fn handoff(&self) -> Handoff {
        ShardedMap::handoff(self)
    }
}

impl<K, V, M, P> ServiceBackend<K, V> for ShardedMap<K, V, M, P>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    M: BatchedMap<K, V> + Send,
    P: Partitioner<K> + Send + Sync,
{
    fn submit(&self, ops: Vec<Operation<K, V>>) -> Vec<Arc<ResultCell<OpResult<V>>>> {
        self.submit_batch(ops)
    }
}

/// Largest chunk one service call deposits at once, from
/// `WSM_SVC_MAX_BATCH` (default 1024, minimum 1).
fn max_batch_from_env() -> usize {
    wsm_core::env::parse("WSM_SVC_MAX_BATCH", "a batch cap >= 1", 1024, |&b| b >= 1)
}

/// The async service front-end over a [`ServiceBackend`] map.  Cheap to
/// clone (shares the backend); see the [crate docs](crate) for the
/// architecture.
pub struct WsMapService<K, V, B> {
    backend: Arc<B>,
    max_batch: usize,
    _kv: PhantomData<fn(K) -> V>,
}

impl<K, V, B> Clone for WsMapService<K, V, B> {
    fn clone(&self) -> Self {
        WsMapService {
            backend: Arc::clone(&self.backend),
            max_batch: self.max_batch,
            _kv: PhantomData,
        }
    }
}

impl<K, V, B> WsMapService<K, V, B>
where
    B: ServiceBackend<K, V>,
{
    /// Wraps a backend map in the service front-end.
    pub fn new(backend: B) -> Self {
        Self::from_arc(Arc::new(backend))
    }

    /// Wraps an already-shared backend (e.g. one the synchronous side of the
    /// program keeps using directly).
    pub fn from_arc(backend: Arc<B>) -> Self {
        WsMapService {
            backend,
            max_batch: max_batch_from_env(),
            _kv: PhantomData,
        }
    }

    /// Overrides the `WSM_SVC_MAX_BATCH` submission cap for this handle.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// The shared backend map.
    pub fn backend(&self) -> &Arc<B> {
        &self.backend
    }

    /// Submits a batch of raw operations, returning a future that resolves
    /// to their results in operation order.  The deposit happens *now*
    /// (before the first poll) and never blocks; the returned [`BatchCall`]
    /// drives completion.
    pub fn call_batch(&self, ops: Vec<Operation<K, V>>) -> BatchCall<V, B> {
        let mut cells = Vec::with_capacity(ops.len());
        let mut ops = ops.into_iter();
        loop {
            let chunk: Vec<Operation<K, V>> = ops.by_ref().take(self.max_batch).collect();
            if chunk.is_empty() {
                break;
            }
            cells.extend(self.backend.submit(chunk));
        }
        let remaining = cells.len();
        BatchCall {
            backend: Arc::clone(&self.backend),
            results: (0..cells.len()).map(|_| None).collect(),
            cells,
            remaining,
        }
    }

    /// Batch search: one result per key, in input order.
    pub async fn batch_search(&self, keys: Vec<K>) -> Vec<Option<V>> {
        let call = self.call_batch(keys.into_iter().map(Operation::Search).collect());
        call.await.into_iter().map(into_value).collect()
    }

    /// Batch insert: the previous value per pair, in input order.
    pub async fn batch_insert(&self, pairs: Vec<(K, V)>) -> Vec<Option<V>> {
        let call = self.call_batch(
            pairs
                .into_iter()
                .map(|(k, v)| Operation::Insert(k, v))
                .collect(),
        );
        call.await.into_iter().map(into_value).collect()
    }

    /// Batch remove: the removed value per key, in input order.
    pub async fn batch_remove(&self, keys: Vec<K>) -> Vec<Option<V>> {
        let call = self.call_batch(keys.into_iter().map(Operation::Delete).collect());
        call.await.into_iter().map(into_value).collect()
    }
}

/// Collapses an [`OpResult`] to its carried value, whatever the op kind.
fn into_value<V>(result: OpResult<V>) -> Option<V> {
    match result {
        OpResult::Search(v) | OpResult::Insert(v) | OpResult::Delete(v) => v,
    }
}

/// Future of one submitted batch: resolves to the per-op results in
/// submission order.  See the crate docs for the poll protocol.
///
/// # Panics
///
/// Polling again after `Ready` panics (the results were moved out).
pub struct BatchCall<V, B> {
    backend: Arc<B>,
    cells: Vec<Arc<ResultCell<OpResult<V>>>>,
    results: Vec<Option<OpResult<V>>>,
    remaining: usize,
}

// No self-references: the future is movable between polls whatever `V` is.
impl<V, B> Unpin for BatchCall<V, B> {}

impl<V, B> BatchCall<V, B> {
    /// Moves every filled cell's payload into `results`; true when all are
    /// in.
    fn harvest(&mut self) -> bool {
        if self.remaining > 0 {
            for (slot, cell) in self.results.iter_mut().zip(&self.cells) {
                if slot.is_none() {
                    if let Some(result) = cell.try_take() {
                        *slot = Some(result);
                        self.remaining -= 1;
                    }
                }
            }
        }
        self.remaining == 0
    }

    fn finish(&mut self) -> Vec<OpResult<V>> {
        self.results
            .drain(..)
            .map(|slot| slot.expect("BatchCall polled after completion"))
            .collect()
    }
}

impl<V, B: BackendDriver> Future for BatchCall<V, B> {
    type Output = Vec<OpResult<V>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if this.harvest() {
            return Poll::Ready(this.finish());
        }
        let waker_mode = this.backend.handoff() == Handoff::Waker;
        if waker_mode {
            for (slot, cell) in this.results.iter().zip(&this.cells) {
                if slot.is_none() {
                    cell.set_waker(cx.waker());
                }
            }
            // Mandatory re-probe: a fill that raced the registrations above
            // has already taken (or never saw) the waker.
            if this.harvest() {
                return Poll::Ready(this.finish());
            }
        }
        // One election attempt — this task may become the combiner.
        this.backend.pump();
        if this.harvest() {
            return Poll::Ready(this.finish());
        }
        // Waker mode parks for free unless ops are still buffered (then
        // another election attempt is needed and nobody else is obliged to
        // make it).  The other modes have no wake signal for tasks: always
        // self-wake and re-poll cooperatively.
        if !waker_mode || this.backend.buffered() {
            cx.waker().wake_by_ref();
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_core::M1;

    fn service(handoff: Handoff) -> WsMapService<u64, u64, ConcurrentMap<u64, u64, M1<u64, u64>>> {
        WsMapService::new(ConcurrentMap::new(M1::new(4), 8).with_handoff(handoff))
    }

    #[test]
    fn batch_roundtrip_in_every_handoff_mode() {
        for handoff in [Handoff::Doorbell, Handoff::Cell, Handoff::Waker] {
            let svc = service(handoff);
            let prev = block_on(svc.batch_insert((0..128u64).map(|k| (k, k * 3)).collect()));
            assert!(prev.iter().all(Option::is_none), "{handoff:?}");
            let got = block_on(svc.batch_search((0..128u64).collect()));
            for (k, v) in (0..128u64).zip(got) {
                assert_eq!(v, Some(k * 3), "{handoff:?} k={k}");
            }
            let removed = block_on(svc.batch_remove((0..64u64).collect()));
            assert!(removed.iter().all(Option::is_some), "{handoff:?}");
            let left = block_on(svc.batch_search((0..128u64).collect()));
            assert_eq!(left.iter().filter(|v| v.is_some()).count(), 64);
        }
    }

    #[test]
    fn empty_batch_resolves_immediately() {
        let svc = service(Handoff::Waker);
        assert!(block_on(svc.batch_search(Vec::new())).is_empty());
    }

    #[test]
    fn call_batch_preserves_submission_order_across_chunks() {
        let svc = service(Handoff::Waker).with_max_batch(7);
        let ops: Vec<Operation<u64, u64>> = (0..100u64).map(|k| Operation::Insert(k, k)).collect();
        let results = block_on(svc.call_batch(ops));
        assert_eq!(results.len(), 100);
        let got = block_on(svc.batch_search((0..100u64).collect()));
        assert!(got.iter().enumerate().all(|(k, v)| *v == Some(k as u64)));
    }

    #[test]
    fn concurrent_client_tasks_on_executor() {
        for handoff in [Handoff::Doorbell, Handoff::Cell, Handoff::Waker] {
            let exec = Executor::new(2);
            let svc = WsMapService::new(
                ShardedMap::with_shards(4, |_| M1::<u64, u64>::new(4)).with_handoff(handoff),
            );
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let svc = svc.clone();
                    exec.spawn(async move {
                        let base = t * 1000;
                        let keys: Vec<u64> = (base..base + 100).collect();
                        let prev = svc
                            .batch_insert(keys.iter().map(|&k| (k, k + 1)).collect())
                            .await;
                        assert!(prev.iter().all(Option::is_none));
                        let got = svc.batch_search(keys.clone()).await;
                        keys.iter().zip(got).all(|(k, v)| v == Some(k + 1))
                    })
                })
                .collect();
            for handle in handles {
                assert!(block_on(handle), "{handoff:?}");
            }
        }
    }
}
