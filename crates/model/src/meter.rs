//! Cost accumulation for instrumented data structures.
//!
//! Every instrumented structure in the workspace (M0, M1, M2, the 2-3 trees,
//! the sorts, ...) owns a [`CostMeter`] and charges unit operations to it.
//! Experiments read the meter to compare measured effective work against the
//! paper's bounds.

use crate::Cost;

/// A record of the cost of a single logical operation (or batch) together with
/// the quantity the paper's bound predicts for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCostRecord {
    /// Measured cost of the operation.
    pub cost: Cost,
    /// The access rank `r` of the operation (paper Definition 1), when known.
    /// Insertions, deletions and unsuccessful searches use `n + 1`.
    pub access_rank: u64,
    /// The working-set charge `log r + 1` for this operation.
    pub ws_charge: u64,
}

/// Accumulates effective work and effective span across the lifetime of a
/// data structure, and optionally per-operation records.
///
/// The meter distinguishes the *total* cost (sequential accumulation of every
/// charge, giving effective work) from the *batch span* (the span of the
/// current batch, accumulated in parallel across operations in the batch),
/// matching Definition 5 of the paper: effective work is the total number of
/// M-nodes and effective span is the maximum number of M-nodes on a path.
#[derive(Clone, Debug, Default)]
pub struct CostMeter {
    total_work: u64,
    /// Span accumulated across *sequential* phases (batches run one after
    /// another; within a batch the span contributions are combined with
    /// `max`).
    total_span: u64,
    current_batch_span: u64,
    batches: u64,
    records: Vec<OpCostRecord>,
    keep_records: bool,
}

impl CostMeter {
    /// Creates a meter that only tracks totals.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Creates a meter that additionally keeps a per-operation record (used by
    /// the experiment harness to plot cost against access rank).
    pub fn with_records() -> Self {
        CostMeter {
            keep_records: true,
            ..CostMeter::default()
        }
    }

    /// Charges a cost that is sequential with everything recorded so far.
    pub fn charge(&mut self, cost: Cost) {
        self.total_work += cost.work;
        self.total_span += cost.span;
    }

    /// Charges a cost that belongs to the current batch: work adds, span is
    /// combined with `max` against the other operations of the batch.
    pub fn charge_in_batch(&mut self, cost: Cost) {
        self.total_work += cost.work;
        self.current_batch_span = self.current_batch_span.max(cost.span);
    }

    /// Ends the current batch, folding its span into the sequential total.
    /// Returns the span of the batch that just ended.
    pub fn end_batch(&mut self) -> u64 {
        let s = self.current_batch_span;
        self.total_span += s;
        self.current_batch_span = 0;
        self.batches += 1;
        s
    }

    /// Records the cost of one logical map operation together with its
    /// working-set charge.
    pub fn record_op(&mut self, record: OpCostRecord) {
        if self.keep_records {
            self.records.push(record);
        }
    }

    /// Total effective work charged so far.
    pub fn work(&self) -> u64 {
        self.total_work
    }

    /// Total effective span charged so far (sequential composition of batch
    /// spans plus directly charged spans).
    pub fn span(&self) -> u64 {
        self.total_span + self.current_batch_span
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// The accumulated totals as a [`Cost`].
    pub fn total(&self) -> Cost {
        Cost {
            work: self.work(),
            span: self.span(),
        }
    }

    /// Per-operation records (empty unless constructed with
    /// [`CostMeter::with_records`]).
    pub fn records(&self) -> &[OpCostRecord] {
        &self.records
    }

    /// Clears all accumulated state.
    pub fn reset(&mut self) {
        let keep = self.keep_records;
        *self = CostMeter::default();
        self.keep_records = keep;
    }

    /// Merges another meter into this one as if its charges happened after
    /// (sequentially with) this meter's charges.
    pub fn absorb(&mut self, other: &CostMeter) {
        self.total_work += other.total_work;
        self.total_span += other.total_span + other.current_batch_span;
        self.batches += other.batches;
        if self.keep_records {
            self.records.extend_from_slice(&other.records);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_sequentially() {
        let mut m = CostMeter::new();
        m.charge(Cost::new(10, 4));
        m.charge(Cost::new(5, 5));
        assert_eq!(m.work(), 15);
        assert_eq!(m.span(), 9);
        assert_eq!(m.total(), Cost::new(15, 9));
    }

    #[test]
    fn batch_span_is_max_of_member_spans() {
        let mut m = CostMeter::new();
        m.charge_in_batch(Cost::new(10, 4));
        m.charge_in_batch(Cost::new(20, 7));
        m.charge_in_batch(Cost::new(5, 2));
        assert_eq!(m.work(), 35);
        // Before ending the batch the span is already visible.
        assert_eq!(m.span(), 7);
        let s = m.end_batch();
        assert_eq!(s, 7);
        assert_eq!(m.span(), 7);
        assert_eq!(m.batches(), 1);

        // A second batch composes sequentially with the first.
        m.charge_in_batch(Cost::new(3, 3));
        m.end_batch();
        assert_eq!(m.span(), 10);
        assert_eq!(m.work(), 38);
    }

    #[test]
    fn records_only_kept_when_requested() {
        let mut plain = CostMeter::new();
        plain.record_op(OpCostRecord {
            cost: Cost::UNIT,
            access_rank: 1,
            ws_charge: 1,
        });
        assert!(plain.records().is_empty());

        let mut recording = CostMeter::with_records();
        recording.record_op(OpCostRecord {
            cost: Cost::new(3, 2),
            access_rank: 4,
            ws_charge: 3,
        });
        assert_eq!(recording.records().len(), 1);
        assert_eq!(recording.records()[0].access_rank, 4);
    }

    #[test]
    fn reset_preserves_record_mode() {
        let mut m = CostMeter::with_records();
        m.charge(Cost::new(4, 4));
        m.record_op(OpCostRecord::default());
        m.reset();
        assert_eq!(m.work(), 0);
        assert!(m.records().is_empty());
        m.record_op(OpCostRecord::default());
        assert_eq!(m.records().len(), 1, "record mode must survive reset");
    }

    #[test]
    fn absorb_composes_sequentially() {
        let mut a = CostMeter::new();
        a.charge(Cost::new(10, 5));
        let mut b = CostMeter::new();
        b.charge_in_batch(Cost::new(6, 3));
        a.absorb(&b);
        assert_eq!(a.work(), 16);
        assert_eq!(a.span(), 8);
    }
}
