//! List-scheduling simulation of greedy and weak-priority schedulers.
//!
//! The paper analyses M1 under any *greedy* scheduler (at each step, if `k`
//! tasks are ready then `min(k, p)` of them execute) and M2 under a
//! *weak-priority* scheduler (Section 7.2): two queues `Q1` (high priority)
//! and `Q2`, where at every step at least half of the processors first try to
//! take high-priority work.
//!
//! [`TaskGraph::simulate`] performs a non-preemptive event-driven list
//! scheduling of a weighted task DAG on `p` virtual processors under either
//! policy.  Experiments use it to convert the effective work/span numbers
//! produced by the instrumented data structures into simulated running times,
//! which is how Theorems 3 and 4 combine the data-structure bounds with
//! Brent-style scheduling bounds.

use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Identifier of a task in a [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Scheduling priority of a task (the two levels of the weak-priority
/// scheduler of Section 7.2, plus a background level for maintenance work).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Priority {
    /// Ordinary work (queue `Q2`).
    #[default]
    Normal,
    /// Weakly-prioritised work (queue `Q1`), e.g. the final-slab nodes of M2.
    High,
    /// Background maintenance work (M2's eager hole-refill cascade): taken
    /// only by processors that found neither high- nor normal-priority work,
    /// so modelling the cascade never delays token-carrying runs.
    Maintenance,
}

#[derive(Clone, Debug)]
struct Task {
    weight: u64,
    priority: Priority,
    preds: usize,
    succs: Vec<TaskId>,
}

/// Which scheduler to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Any-greedy scheduler: ready tasks are taken FIFO by any idle processor.
    Greedy,
    /// Weak-priority scheduler: half of the processors prefer high-priority
    /// ready tasks; the rest take work FIFO regardless of priority.
    WeakPriority,
}

/// Result of a scheduling simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleResult {
    /// Completion time of the last task.
    pub makespan: u64,
    /// Sum of all task weights.
    pub total_work: u64,
    /// Critical-path length of the task graph (weighted span).
    pub critical_path: u64,
    /// Number of tasks executed.
    pub tasks: u64,
}

impl ScheduleResult {
    /// The Brent lower bound `max(total_work / p, critical_path)`; a greedy
    /// schedule is always within a factor 2 of it, so experiments report the
    /// ratio `makespan / lower_bound(p)` to show the schedule quality.
    pub fn lower_bound(&self, p: u64) -> u64 {
        (self.total_work).div_ceil(p).max(self.critical_path)
    }
}

/// A weighted DAG of tasks with two-level priorities.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty task graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Adds a task of the given weight (duration in unit steps) and priority.
    /// Zero-weight tasks are allowed and treated as weight so that they still
    /// occupy a scheduling slot of zero duration.
    pub fn add_task(&mut self, weight: u64, priority: Priority) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            weight,
            priority,
            preds: 0,
            succs: Vec::new(),
        });
        id
    }

    /// Adds a normal-priority task.
    pub fn add(&mut self, weight: u64) -> TaskId {
        self.add_task(weight, Priority::Normal)
    }

    /// Adds a dependency edge: `to` can only start after `from` completes.
    ///
    /// # Panics
    /// Panics if `from >= to` in creation order (ensures acyclicity) or ids are
    /// out of range.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        assert!(from.0 < to.0, "edges must go forward in creation order");
        assert!(to.0 < self.tasks.len(), "task id out of range");
        self.tasks[from.0].succs.push(to);
        self.tasks[to.0].preds += 1;
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total work (sum of weights).
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(|t| t.weight).sum()
    }

    /// Weighted critical path length.
    pub fn critical_path(&self) -> u64 {
        let mut dist = vec![0u64; self.tasks.len()];
        let mut best = 0;
        // Creation order is a topological order because edges only go forward.
        for i in 0..self.tasks.len() {
            let d = dist[i] + self.tasks[i].weight;
            best = best.max(d);
            for &TaskId(s) in &self.tasks[i].succs {
                dist[s] = dist[s].max(d);
            }
        }
        best
    }

    /// Simulates non-preemptive list scheduling on `p` processors.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn simulate(&self, p: usize, policy: SchedulePolicy) -> ScheduleResult {
        assert!(p > 0, "need at least one processor");
        let n = self.tasks.len();
        let mut preds_left: Vec<usize> = self.tasks.iter().map(|t| t.preds).collect();

        // Ready queues.
        let mut high: VecDeque<usize> = VecDeque::new();
        let mut normal: VecDeque<usize> = VecDeque::new();
        let mut maint: VecDeque<usize> = VecDeque::new();
        let push_ready = |i: usize,
                          high: &mut VecDeque<usize>,
                          normal: &mut VecDeque<usize>,
                          maint: &mut VecDeque<usize>| {
            match self.tasks[i].priority {
                Priority::High => high.push_back(i),
                Priority::Normal => normal.push_back(i),
                Priority::Maintenance => maint.push_back(i),
            }
        };
        for (i, &left) in preds_left.iter().enumerate() {
            if left == 0 {
                push_ready(i, &mut high, &mut normal, &mut maint);
            }
        }

        // Min-heap of (finish_time, task) for running tasks.
        let mut running: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut idle = p;
        let mut now: u64 = 0;
        let mut makespan: u64 = 0;
        let mut done = 0usize;
        // Number of processors that prefer the high-priority queue.
        let high_preferring = match policy {
            SchedulePolicy::Greedy => 0,
            SchedulePolicy::WeakPriority => p.div_ceil(2),
        };

        while done < n {
            // Dispatch as many ready tasks as we have idle processors.
            // Under the weak-priority policy the first `high_preferring` idle
            // processors take from the high queue first.
            let mut dispatched_any = false;
            while idle > 0 && (!high.is_empty() || !normal.is_empty() || !maint.is_empty()) {
                let prefer_high = match policy {
                    SchedulePolicy::Greedy => false,
                    SchedulePolicy::WeakPriority => p - idle < high_preferring,
                };
                // Maintenance work is background under both policies: an idle
                // processor takes it only when no foreground task is ready
                // (greediness keeps all processors busy regardless).
                let task = if prefer_high {
                    high.pop_front()
                        .or_else(|| normal.pop_front())
                        .or_else(|| maint.pop_front())
                } else {
                    // Plain greedy processors still take high-priority work if
                    // nothing else is available (greediness).
                    normal
                        .pop_front()
                        .or_else(|| high.pop_front())
                        .or_else(|| maint.pop_front())
                };
                let Some(i) = task else { break };
                let finish = now + self.tasks[i].weight;
                running.push(std::cmp::Reverse((finish, i)));
                idle -= 1;
                dispatched_any = true;
            }
            let _ = dispatched_any;

            // Advance time to the next completion.
            let Some(std::cmp::Reverse((t, _))) = running.peek().copied() else {
                // No running tasks: if nothing is ready either, the graph had a
                // cycle or dangling dependency; creation-order edges prevent
                // that, so this means we are done.
                break;
            };
            now = t;
            // Complete every task finishing at `now`.
            while let Some(std::cmp::Reverse((ft, i))) = running.peek().copied() {
                if ft != now {
                    break;
                }
                running.pop();
                idle += 1;
                done += 1;
                makespan = makespan.max(ft);
                for &TaskId(s) in &self.tasks[i].succs {
                    preds_left[s] -= 1;
                    if preds_left[s] == 0 {
                        push_ready(s, &mut high, &mut normal, &mut maint);
                    }
                }
            }
        }

        ScheduleResult {
            makespan,
            total_work: self.total_work(),
            critical_path: self.critical_path(),
            tasks: n as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task() {
        let mut g = TaskGraph::new();
        g.add(7);
        let r = g.simulate(4, SchedulePolicy::Greedy);
        assert_eq!(r.makespan, 7);
        assert_eq!(r.total_work, 7);
        assert_eq!(r.critical_path, 7);
    }

    #[test]
    fn independent_tasks_scale_with_processors() {
        let mut g = TaskGraph::new();
        for _ in 0..16 {
            g.add(10);
        }
        assert_eq!(g.simulate(1, SchedulePolicy::Greedy).makespan, 160);
        assert_eq!(g.simulate(4, SchedulePolicy::Greedy).makespan, 40);
        assert_eq!(g.simulate(16, SchedulePolicy::Greedy).makespan, 10);
        assert_eq!(g.simulate(32, SchedulePolicy::Greedy).makespan, 10);
    }

    #[test]
    fn chain_is_bounded_by_critical_path() {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for _ in 0..10 {
            let t = g.add(3);
            if let Some(p) = prev {
                g.add_edge(p, t);
            }
            prev = Some(t);
        }
        let r = g.simulate(8, SchedulePolicy::Greedy);
        assert_eq!(r.critical_path, 30);
        assert_eq!(r.makespan, 30);
    }

    #[test]
    fn greedy_meets_brent_bound() {
        // Random-ish fork/join structure: makespan <= work/p + span must hold
        // for any greedy schedule (Brent / Graham bound).
        let mut g = TaskGraph::new();
        let mut joins = Vec::new();
        let root = g.add(1);
        for round in 0..5u64 {
            let fork_from = *joins.last().unwrap_or(&root);
            let children: Vec<TaskId> = (0..6)
                .map(|i| {
                    let t = g.add(1 + (i * round) % 7);
                    g.add_edge(fork_from, t);
                    t
                })
                .collect();
            let join = g.add(1);
            for c in children {
                g.add_edge(c, join);
            }
            joins.push(join);
        }
        for p in [1u64, 2, 3, 4, 8] {
            let r = g.simulate(p as usize, SchedulePolicy::Greedy);
            assert!(
                r.makespan <= r.total_work.div_ceil(p) + r.critical_path,
                "greedy schedule on p={p} violates Brent bound: {r:?}"
            );
            assert!(r.makespan >= r.lower_bound(p));
        }
    }

    #[test]
    fn weak_priority_prefers_high_queue() {
        // 2 processors; a long normal task and a chain of high tasks released
        // together with many normal tasks.  Under weak priority at least one
        // processor always works on the high chain, so the chain finishes in
        // its critical-path time.
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for _ in 0..10 {
            let t = g.add_task(5, Priority::High);
            if let Some(p) = prev {
                g.add_edge(p, t);
            }
            prev = Some(t);
        }
        for _ in 0..40 {
            g.add_task(5, Priority::Normal);
        }
        let r = g.simulate(2, SchedulePolicy::WeakPriority);
        // Total work = 50*5 = 250 on 2 processors: makespan >= 125, and the
        // high chain (50) finishes long before that; the overall makespan must
        // not exceed work/p + span.
        assert!(r.makespan <= r.total_work / 2 + r.critical_path);
        let greedy = g.simulate(2, SchedulePolicy::Greedy);
        // Both policies are greedy, so both satisfy the bound; weak priority
        // must not be worse than the bound either.
        assert!(greedy.makespan <= greedy.total_work / 2 + greedy.critical_path);
    }

    #[test]
    fn maintenance_tasks_run_last_but_run() {
        // One processor, one normal task and one maintenance task released
        // together: the normal task must be picked first under both policies,
        // and the maintenance task still completes (greedy schedulers leave
        // no processor idle while work is ready).
        let mut g = TaskGraph::new();
        g.add_task(5, Priority::Maintenance);
        g.add_task(3, Priority::Normal);
        for policy in [SchedulePolicy::Greedy, SchedulePolicy::WeakPriority] {
            let r = g.simulate(1, policy);
            assert_eq!(r.makespan, 8, "both tasks must execute under {policy:?}");
        }
        // With enough processors maintenance runs immediately in parallel.
        let r = g.simulate(2, SchedulePolicy::WeakPriority);
        assert_eq!(r.makespan, 5);
    }

    #[test]
    fn maintenance_never_delays_foreground_chain() {
        // A chain of high tasks plus a flood of maintenance tasks on two
        // processors: the high chain finishes in critical-path time because
        // maintenance is only taken by otherwise-idle processors.
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for _ in 0..6 {
            let t = g.add_task(4, Priority::High);
            if let Some(p) = prev {
                g.add_edge(p, t);
            }
            prev = Some(t);
        }
        for _ in 0..20 {
            g.add_task(4, Priority::Maintenance);
        }
        let r = g.simulate(2, SchedulePolicy::WeakPriority);
        assert!(r.makespan <= r.total_work / 2 + r.critical_path);
        assert_eq!(r.tasks, 26);
    }

    #[test]
    fn zero_weight_tasks_complete() {
        let mut g = TaskGraph::new();
        let a = g.add(0);
        let b = g.add(3);
        g.add_edge(a, b);
        let r = g.simulate(1, SchedulePolicy::Greedy);
        assert_eq!(r.makespan, 3);
        assert_eq!(r.tasks, 2);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        let r = g.simulate(4, SchedulePolicy::Greedy);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.tasks, 0);
    }
}
