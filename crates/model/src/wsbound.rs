//! The working-set bound (paper Definitions 1, 2 and 9).
//!
//! * The **access rank** of an operation (Definition 1): for a successful
//!   search on `x`, the number of distinct items in the map that have been
//!   searched for or inserted since the last prior operation on `x`
//!   (including `x` itself); for insertions, deletions and unsuccessful
//!   searches it is `n + 1` where `n` is the current map size.
//! * The **working-set bound** `W_L` of a sequence `L` (Definition 2):
//!   `Σ (log r_i + 1)` over the access ranks `r_i` of the operations of `L`
//!   when `L` is performed on an empty map.
//! * The **insert working-set bound** `IW_L` (Definition 9): the working-set
//!   bound of the sequence that, for each item of `L` in order, searches for
//!   it and inserts it iff absent.
//!
//! These quantities are what every bound-validation experiment compares
//! measured effective work against.  Ranks are computed exactly with a Fenwick
//! tree over operation positions in `O(N log N)`.

use crate::log_cost;
use std::collections::BTreeMap;

/// A Fenwick (binary indexed) tree over positions `0..n` supporting point
/// updates and prefix sums; used to count distinct items in a window.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    /// Creates a Fenwick tree over `n` positions, all zero.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at position `i`.
    pub fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    pub fn prefix(&self, i: usize) -> i64 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the inclusive range `lo..=hi` (0 if the range is empty).
    pub fn range(&self, lo: usize, hi: usize) -> i64 {
        if lo > hi {
            return 0;
        }
        let below = if lo == 0 { 0 } else { self.prefix(lo - 1) };
        self.prefix(hi) - below
    }
}

/// A map operation for working-set bound computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapOpKind<K> {
    /// A search (access/update) of a key.
    Search(K),
    /// An insertion of a key.
    Insert(K),
    /// A deletion of a key.
    Delete(K),
}

impl<K> MapOpKind<K> {
    /// The key this operation touches.
    pub fn key(&self) -> &K {
        match self {
            MapOpKind::Search(k) | MapOpKind::Insert(k) | MapOpKind::Delete(k) => k,
        }
    }
}

/// Computes the access rank (Definition 1) of every operation of `ops` when
/// the sequence is performed on an initially empty map.
pub fn access_ranks<K: Ord + Clone>(ops: &[MapOpKind<K>]) -> Vec<u64> {
    let n = ops.len();
    let mut ranks = Vec::with_capacity(n);
    // Position of the most recent search-or-insert of each item currently in
    // the map (marked in the Fenwick tree), plus the set of present items.
    let mut mark: BTreeMap<K, usize> = BTreeMap::new();
    let mut present: BTreeMap<K, ()> = BTreeMap::new();
    let mut bit = Fenwick::new(n);
    for (i, op) in ops.iter().enumerate() {
        let key = op.key();
        match op {
            MapOpKind::Search(_) => {
                if present.contains_key(key) {
                    let since = mark.get(key).copied();
                    let distinct_between = match since {
                        Some(j) if j < i.saturating_sub(1) => bit.range(j + 1, i - 1),
                        _ => 0,
                    };
                    ranks.push(distinct_between as u64 + 1);
                    // Move the mark of `key` to position i.
                    if let Some(j) = since {
                        bit.add(j, -1);
                    }
                    bit.add(i, 1);
                    mark.insert(key.clone(), i);
                } else {
                    ranks.push(present.len() as u64 + 1);
                }
            }
            MapOpKind::Insert(_) => {
                ranks.push(present.len() as u64 + 1);
                if let Some(j) = mark.get(key).copied() {
                    bit.add(j, -1);
                }
                bit.add(i, 1);
                mark.insert(key.clone(), i);
                present.insert(key.clone(), ());
            }
            MapOpKind::Delete(_) => {
                ranks.push(present.len() as u64 + 1);
                if present.remove(key).is_some() {
                    if let Some(j) = mark.remove(key) {
                        bit.add(j, -1);
                    }
                }
            }
        }
    }
    ranks
}

/// The working-set bound `W_L` (Definition 2) of an operation sequence.
pub fn working_set_bound<K: Ord + Clone>(ops: &[MapOpKind<K>]) -> u64 {
    access_ranks(ops).into_iter().map(log_cost).sum()
}

/// The insert working-set bound `IW_L` (Definition 9) of a sequence of items:
/// the working-set bound of searching each item and inserting it iff absent.
pub fn insert_working_set_bound<K: Ord + Clone>(items: &[K]) -> u64 {
    let mut ops: Vec<MapOpKind<K>> = Vec::with_capacity(items.len() * 2);
    let mut seen: BTreeMap<K, ()> = BTreeMap::new();
    for item in items {
        ops.push(MapOpKind::Search(item.clone()));
        if seen.insert(item.clone(), ()).is_none() {
            ops.push(MapOpKind::Insert(item.clone()));
        }
    }
    working_set_bound(&ops)
}

/// The binary entropy `H = Σ q_i log2(1/q_i)` of the frequency distribution of
/// `items` (0 for empty or single-item-type inputs).
pub fn sequence_entropy<K: Ord>(items: &[K]) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    let mut counts: BTreeMap<&K, u64> = BTreeMap::new();
    for item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    let n = items.len() as f64;
    counts
        .values()
        .map(|&c| {
            let q = c as f64 / n;
            q * (1.0 / q).log2()
        })
        .sum()
}

/// The sorting entropy lower bound `n·H + n` (Theorem 28, up to constants) for
/// a sequence.
pub fn entropy_bound<K: Ord>(items: &[K]) -> f64 {
    items.len() as f64 * (sequence_entropy(items) + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_prefix_and_range() {
        let mut f = Fenwick::new(10);
        for i in 0..10 {
            f.add(i, (i + 1) as i64);
        }
        assert_eq!(f.prefix(0), 1);
        assert_eq!(f.prefix(9), 55);
        assert_eq!(f.range(2, 4), 3 + 4 + 5);
        assert_eq!(f.range(5, 3), 0);
        f.add(3, -4);
        assert_eq!(f.range(2, 4), 3 + 5);
    }

    #[test]
    fn ranks_of_inserts_grow_with_size() {
        let ops: Vec<MapOpKind<u64>> = (0..5).map(MapOpKind::Insert).collect();
        assert_eq!(access_ranks(&ops), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn repeated_search_has_rank_one() {
        let mut ops: Vec<MapOpKind<u64>> = (0..10).map(MapOpKind::Insert).collect();
        ops.push(MapOpKind::Search(7));
        ops.push(MapOpKind::Search(7));
        let ranks = access_ranks(&ops);
        // First search of 7: every item was inserted since, so rank is the
        // number of distinct items inserted after 7 (8, 9) plus 7 itself = 3.
        assert_eq!(ranks[10], 3);
        // Second search immediately after: rank 1.
        assert_eq!(ranks[11], 1);
    }

    #[test]
    fn unsuccessful_search_costs_n_plus_one() {
        let mut ops: Vec<MapOpKind<u64>> = (0..4).map(MapOpKind::Insert).collect();
        ops.push(MapOpKind::Search(99));
        assert_eq!(access_ranks(&ops)[4], 5);
    }

    #[test]
    fn deletion_resets_membership() {
        let ops = vec![
            MapOpKind::Insert(1u64),
            MapOpKind::Delete(1),
            MapOpKind::Search(1),
        ];
        let ranks = access_ranks(&ops);
        // After deletion the search is unsuccessful: rank n+1 = 1.
        assert_eq!(ranks[2], 1);
    }

    #[test]
    fn working_set_bound_favours_locality() {
        // Access each of 1024 keys once (uniform scan) vs access one key 1024
        // times: the latter has a far smaller working-set bound.
        let n = 1024u64;
        let mut scan: Vec<MapOpKind<u64>> = (0..n).map(MapOpKind::Insert).collect();
        scan.extend((0..n).map(MapOpKind::Search));
        let mut hot: Vec<MapOpKind<u64>> = (0..n).map(MapOpKind::Insert).collect();
        hot.extend(std::iter::repeat_n(MapOpKind::Search(0), n as usize));
        let w_scan = working_set_bound(&scan);
        let w_hot = working_set_bound(&hot);
        assert!(w_hot < w_scan, "hot {w_hot} should be < scan {w_scan}");
        // The hot workload's search part costs ~1 per op after the first.
        let insert_part: u64 = (1..=n).map(crate::log_cost).sum();
        assert!(w_hot <= insert_part + n + 64);
    }

    #[test]
    fn insert_ws_bound_between_n_and_nlogn() {
        let distinct: Vec<u64> = (0..256).collect();
        let repeated: Vec<u64> = vec![42; 256];
        let w_distinct = insert_working_set_bound(&distinct);
        let w_repeated = insert_working_set_bound(&repeated);
        assert!(w_repeated < w_distinct);
        // Repeated: one search per item (cost 1 each) plus one insert.
        assert!(w_repeated >= 256);
        assert!(w_repeated <= 300);
        // Distinct: the i-th item costs ~2(log i + 1).
        assert!(w_distinct >= 256 * 4);
    }

    #[test]
    fn entropy_of_uniform_and_constant() {
        let constant = vec![1u64; 100];
        assert!(sequence_entropy(&constant).abs() < 1e-9);
        let uniform: Vec<u64> = (0..64).collect();
        assert!((sequence_entropy(&uniform) - 6.0).abs() < 1e-9);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(sequence_entropy(&empty), 0.0);
    }

    #[test]
    fn entropy_bound_scales_with_n_and_h() {
        let skewed: Vec<u64> = (0..1000).map(|i| if i % 10 == 0 { i } else { 0 }).collect();
        let uniform: Vec<u64> = (0..1000).collect();
        assert!(entropy_bound(&skewed) < entropy_bound(&uniform));
        assert!(entropy_bound(&uniform) <= 1000.0 * (1000f64.log2() + 1.0) + 1e-6);
    }
}
