//! # wsm-model — QRMW-style cost model and scheduler simulation
//!
//! The paper "Parallel Working-Set Search Structures" (SPAA 2018) analyses its
//! data structures in the QRMW parallel pointer machine model, measuring
//! *effective work* (total number of data-structure nodes executed) and
//! *effective span* (maximum number of data-structure nodes on any path of the
//! execution DAG), see Definition 5 of the paper.
//!
//! This crate provides the building blocks that every other crate in the
//! workspace uses to account for those quantities analytically:
//!
//! * [`Cost`] — a `(work, span)` pair with sequential and parallel
//!   composition, mirroring how work and span compose in the dynamic
//!   multithreading model (work adds; span adds in sequence, maxes in
//!   parallel).
//! * [`CostMeter`] — an accumulator used by instrumented data structures to
//!   record the cost of each operation or batch.
//! * [`dag`] — a small program-DAG builder used by the experiments to model a
//!   parallel program that makes map calls (computing `T_1`, `T_inf`, `d` and
//!   the weighted span `s_L` of Theorem 4).
//! * [`sched`] — discrete list-scheduling simulation of a greedy scheduler and
//!   of the weak-priority scheduler of Section 7.2, used to turn effective
//!   work/span numbers into simulated running times (Theorems 3 and 4).
//!
//! The cost model is exact rather than asymptotic: data structures count unit
//! operations (key comparisons, node visits, transfers, lock-queue steps) so
//! that experiments can check the *shape* of the paper's bounds (linear in the
//! working-set bound, logarithmic in recency, and so on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dag;
pub mod meter;
pub mod sched;
pub mod wsbound;

pub use cost::Cost;
pub use dag::{NodeId, NodeKind, ProgramDag};
pub use meter::{CostMeter, OpCostRecord};
pub use sched::{Priority, SchedulePolicy, ScheduleResult, TaskGraph, TaskId};
pub use wsbound::{
    access_ranks, entropy_bound, insert_working_set_bound, sequence_entropy, working_set_bound,
    Fenwick, MapOpKind,
};

/// Integer base-2 logarithm of `x.max(1)`, rounded down.
///
/// The paper's bounds are stated in terms of `log r + 1`; helpers here keep
/// all crates consistent about how the discrete logarithm is taken.
#[inline]
pub fn ilog2(x: u64) -> u32 {
    x.max(1).ilog2()
}

/// `log2(x) + 1` as used in the working-set bound `W_L = sum(log r_i + 1)`.
#[inline]
pub fn log_cost(x: u64) -> u64 {
    u64::from(ilog2(x)) + 1
}

/// Ceiling of `log2(x.max(1))`.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    let x = x.max(1);
    if x.is_power_of_two() {
        x.ilog2()
    } else {
        x.ilog2() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilog2_small_values() {
        assert_eq!(ilog2(0), 0);
        assert_eq!(ilog2(1), 0);
        assert_eq!(ilog2(2), 1);
        assert_eq!(ilog2(3), 1);
        assert_eq!(ilog2(4), 2);
        assert_eq!(ilog2(1023), 9);
        assert_eq!(ilog2(1024), 10);
    }

    #[test]
    fn log_cost_matches_definition() {
        // log r + 1 with log base 2, floored.
        assert_eq!(log_cost(1), 1);
        assert_eq!(log_cost(2), 2);
        assert_eq!(log_cost(8), 4);
        assert_eq!(log_cost(9), 4);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }
}
