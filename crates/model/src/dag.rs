//! Program DAG modelling.
//!
//! The paper's Theorems 3 and 4 bound the running time of a parallel program
//! `P` in terms of quantities of its program DAG `D`: the total number of
//! nodes `T_1`, the longest path `T_inf`, the maximum number of map calls `d`
//! on any path, and (for M2) the weighted span `s_L` in which each map call is
//! weighted by its working-set charge `log r + 1`.
//!
//! [`ProgramDag`] lets experiments build such DAGs explicitly (series chains,
//! parallel fans, fork/join combinations of map calls and local work) and
//! query exactly those quantities.

use std::collections::HashMap;

/// Identifier of a node in a [`ProgramDag`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// The kind of a program-DAG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A unit-time local instruction.
    Local,
    /// A call to the map data structure.  The payload is an opaque operation
    /// index that the experiment uses to look up the operation's cost or
    /// working-set weight once a linearization is chosen.
    Call(usize),
}

#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    preds: Vec<NodeId>,
    succs: Vec<NodeId>,
}

/// A DAG of unit-time instructions and map calls.
///
/// Nodes must be added before edges referencing them; edges must go from an
/// earlier-created node to a later-created node (this enforces acyclicity and
/// gives a free topological order).
#[derive(Clone, Debug, Default)]
pub struct ProgramDag {
    nodes: Vec<Node>,
}

impl ProgramDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        ProgramDag::default()
    }

    /// Adds a node of the given kind and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            preds: Vec::new(),
            succs: Vec::new(),
        });
        id
    }

    /// Adds a local (unit instruction) node.
    pub fn add_local(&mut self) -> NodeId {
        self.add_node(NodeKind::Local)
    }

    /// Adds a map-call node carrying operation index `op`.
    pub fn add_call(&mut self, op: usize) -> NodeId {
        self.add_node(NodeKind::Call(op))
    }

    /// Adds a dependency edge `from -> to`.
    ///
    /// # Panics
    /// Panics if `from >= to` (which would break the topological invariant) or
    /// if either id is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from.0 < to.0, "edges must go forward in creation order");
        assert!(to.0 < self.nodes.len(), "node id out of range");
        self.nodes[from.0].succs.push(to);
        self.nodes[to.0].preds.push(from);
    }

    /// Appends a chain of `len` local nodes after `after` (or as roots when
    /// `after` is `None`), returning the last node of the chain.
    pub fn add_local_chain(&mut self, after: Option<NodeId>, len: usize) -> Option<NodeId> {
        let mut prev = after;
        let mut last = after;
        for _ in 0..len {
            let n = self.add_local();
            if let Some(p) = prev {
                self.add_edge(p, n);
            }
            prev = Some(n);
            last = Some(n);
        }
        last
    }

    /// Number of nodes (`T_1` of the program DAG, counting calls as single
    /// nodes as the paper does).
    pub fn t1(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Number of nodes in the DAG.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The kind of node `id`.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0].kind
    }

    /// All call-node operation indices in creation order.
    pub fn call_ops(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Call(op) => Some(op),
                NodeKind::Local => None,
            })
            .collect()
    }

    /// Longest path measured with every node weighing 1 (`T_inf`).
    pub fn t_inf(&self) -> u64 {
        self.weighted_span(|_| 1)
    }

    /// The maximum number of call nodes on any path (`d` in Theorems 3/4).
    pub fn call_depth(&self) -> u64 {
        self.weighted_span(|kind| match kind {
            NodeKind::Call(_) => 1,
            NodeKind::Local => 0,
        })
    }

    /// The weighted span: the maximum over paths of the sum of `weight(node)`.
    ///
    /// `s_L` of Theorem 4 is obtained by weighting each call node with its
    /// working-set charge `log r + 1` under the linearization `L` and each
    /// local node with 1 (or 0 to isolate the map term).
    pub fn weighted_span<F: Fn(NodeKind) -> u64>(&self, weight: F) -> u64 {
        let mut best: Vec<u64> = vec![0; self.nodes.len()];
        let mut overall = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            let from_preds = node.preds.iter().map(|p| best[p.0]).max().unwrap_or(0);
            best[i] = from_preds + weight(node.kind);
            overall = overall.max(best[i]);
        }
        overall
    }

    /// Weighted span where call nodes are weighted by the supplied per-op
    /// weights (indexed by the operation index stored in the call node) and
    /// local nodes weigh `local_weight`.
    pub fn weighted_call_span(&self, weights: &HashMap<usize, u64>, local_weight: u64) -> u64 {
        self.weighted_span(|kind| match kind {
            NodeKind::Call(op) => *weights.get(&op).unwrap_or(&1),
            NodeKind::Local => local_weight,
        })
    }

    /// Returns the predecessors of a node.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].preds
    }

    /// Returns the successors of a node.
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].succs
    }

    /// Builds a simple series-parallel DAG commonly used in the experiments:
    /// `rounds` sequential rounds, each consisting of `width` independent map
    /// calls (operation indices are assigned consecutively), joined by a local
    /// node between rounds.  Returns the DAG and the number of call nodes.
    pub fn rounds_of_parallel_calls(rounds: usize, width: usize) -> (ProgramDag, usize) {
        let mut dag = ProgramDag::new();
        let mut op = 0usize;
        let mut join_prev: Option<NodeId> = None;
        for _ in 0..rounds {
            let fork = dag.add_local();
            if let Some(j) = join_prev {
                dag.add_edge(j, fork);
            }
            let join = {
                let calls: Vec<NodeId> = (0..width)
                    .map(|_| {
                        let c = dag.add_call(op);
                        op += 1;
                        dag.add_edge(fork, c);
                        c
                    })
                    .collect();
                let join = dag.add_local();
                for c in calls {
                    dag.add_edge(c, join);
                }
                join
            };
            join_prev = Some(join);
        }
        (dag, op)
    }

    /// Builds a pure chain of `len` map calls (the worst case for the `d`
    /// term of the span bounds).
    pub fn call_chain(len: usize) -> (ProgramDag, usize) {
        let mut dag = ProgramDag::new();
        let mut prev: Option<NodeId> = None;
        for op in 0..len {
            let c = dag.add_call(op);
            if let Some(p) = prev {
                dag.add_edge(p, c);
            }
            prev = Some(c);
        }
        (dag, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_quantities() {
        let (dag, n) = ProgramDag::call_chain(10);
        assert_eq!(n, 10);
        assert_eq!(dag.t1(), 10);
        assert_eq!(dag.t_inf(), 10);
        assert_eq!(dag.call_depth(), 10);
    }

    #[test]
    fn rounds_of_parallel_calls_quantities() {
        let (dag, ops) = ProgramDag::rounds_of_parallel_calls(3, 4);
        assert_eq!(ops, 12);
        // Each round: 1 fork + 4 calls + 1 join = 6 nodes.
        assert_eq!(dag.t1(), 18);
        // Longest path: fork, call, join per round = 3 nodes per round.
        assert_eq!(dag.t_inf(), 9);
        // One call per round on any path.
        assert_eq!(dag.call_depth(), 3);
    }

    #[test]
    fn weighted_call_span_uses_weights() {
        let (dag, _) = ProgramDag::rounds_of_parallel_calls(2, 2);
        // ops 0..2 in round one, 2..4 in round two.
        let mut weights = HashMap::new();
        weights.insert(0usize, 10u64);
        weights.insert(1usize, 1u64);
        weights.insert(2usize, 7u64);
        weights.insert(3usize, 2u64);
        // Ignoring local nodes, the heaviest path takes the max-weight call of
        // each round: 10 + 7.
        assert_eq!(dag.weighted_call_span(&weights, 0), 17);
        // Counting local nodes adds 2 per round.
        assert_eq!(dag.weighted_call_span(&weights, 1), 21);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_edge_panics() {
        let mut dag = ProgramDag::new();
        let a = dag.add_local();
        let b = dag.add_local();
        dag.add_edge(b, a);
    }

    #[test]
    fn local_chain_helper() {
        let mut dag = ProgramDag::new();
        let end = dag.add_local_chain(None, 5).unwrap();
        assert_eq!(dag.t1(), 5);
        assert_eq!(dag.t_inf(), 5);
        let end2 = dag.add_local_chain(Some(end), 3).unwrap();
        assert_eq!(dag.t_inf(), 8);
        assert!(end2.0 > end.0);
    }

    #[test]
    fn empty_dag() {
        let dag = ProgramDag::new();
        assert!(dag.is_empty());
        assert_eq!(dag.t_inf(), 0);
        assert_eq!(dag.call_depth(), 0);
    }
}
