//! The `(work, span)` cost algebra of the dynamic multithreading model.
//!
//! Work is the total number of unit operations executed; span is the number of
//! unit operations on the longest dependency chain.  Sequential composition
//! adds both; parallel composition adds work and takes the maximum span.  This
//! mirrors exactly how the paper reasons about effective work and effective
//! span (Definition 5).

use serde::{Deserialize, Serialize};

/// A `(work, span)` pair in the dynamic multithreading cost model.
///
/// All instrumented operations in the workspace return a `Cost`.  The two
/// composition operators are [`Cost::then`] (sequential) and [`Cost::par`]
/// (parallel).  `Cost` is a commutative monoid under `par` and a (non
/// commutative in general, but here commutative because both fields are
/// symmetric) monoid under `then`, with [`Cost::ZERO`] as identity for both.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cost {
    /// Total number of unit operations.
    pub work: u64,
    /// Number of unit operations on the critical path.
    pub span: u64,
}

impl Cost {
    /// The zero cost (identity for both compositions).
    pub const ZERO: Cost = Cost { work: 0, span: 0 };

    /// A single unit operation: one unit of work, one unit of span.
    pub const UNIT: Cost = Cost { work: 1, span: 1 };

    /// Creates a cost from explicit work and span.
    ///
    /// # Panics
    /// Panics in debug builds if `span > work` (a span longer than the total
    /// work is impossible) unless `work == 0`.
    #[inline]
    pub fn new(work: u64, span: u64) -> Self {
        debug_assert!(span <= work || work == 0, "span {span} exceeds work {work}");
        Cost { work, span }
    }

    /// `k` unit operations executed sequentially.
    #[inline]
    pub fn serial(k: u64) -> Self {
        Cost { work: k, span: k }
    }

    /// `k` unit operations that are all independent (perfectly parallel).
    #[inline]
    pub fn flat(k: u64) -> Self {
        Cost {
            work: k,
            span: if k == 0 { 0 } else { 1 },
        }
    }

    /// Sequential composition: work adds, span adds.
    #[inline]
    #[must_use]
    pub fn then(self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            span: self.span + other.span,
        }
    }

    /// Parallel composition: work adds, span is the maximum.
    #[inline]
    #[must_use]
    pub fn par(self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            span: self.span.max(other.span),
        }
    }

    /// Sequential composition of an iterator of costs.
    pub fn seq_over<I: IntoIterator<Item = Cost>>(iter: I) -> Cost {
        iter.into_iter().fold(Cost::ZERO, Cost::then)
    }

    /// Parallel composition of an iterator of costs.
    pub fn par_over<I: IntoIterator<Item = Cost>>(iter: I) -> Cost {
        iter.into_iter().fold(Cost::ZERO, Cost::par)
    }

    /// Repeats this cost `k` times sequentially.
    #[inline]
    #[must_use]
    pub fn repeat(self, k: u64) -> Cost {
        Cost {
            work: self.work * k,
            span: self.span * k,
        }
    }

    /// Adds `k` units of pure work without extending the span beyond one unit
    /// (used for perfectly parallelisable bulk phases such as scanning a
    /// batch).
    #[inline]
    #[must_use]
    pub fn plus_flat_work(self, k: u64) -> Cost {
        self.par(Cost::flat(k))
    }

    /// The "ideal running time" `work / p + span` on `p` processors, i.e. the
    /// Brent bound up to a factor of two.  Used by experiments to convert
    /// effective work/span into an effective cost (Definition 5 of the paper).
    #[inline]
    pub fn effective_time(&self, p: u64) -> f64 {
        assert!(p > 0, "processor count must be positive");
        self.work as f64 / p as f64 + self.span as f64
    }

    /// True if both work and span are zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.work == 0 && self.span == 0
    }

    /// Parallelism `work / span` (`inf` when span is zero and work non-zero,
    /// 1.0 when both are zero).
    #[inline]
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            if self.work == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.work as f64 / self.span as f64
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    /// `+` is sequential composition, the most common case in accounting code.
    fn add(self, rhs: Cost) -> Cost {
        self.then(rhs)
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = self.then(rhs);
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        Cost::seq_over(iter)
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work={} span={}", self.work, self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_identity() {
        let c = Cost::new(10, 3);
        assert_eq!(c.then(Cost::ZERO), c);
        assert_eq!(Cost::ZERO.then(c), c);
        assert_eq!(c.par(Cost::ZERO), c);
        assert_eq!(Cost::ZERO.par(c), c);
    }

    #[test]
    fn sequential_composition_adds_both() {
        let a = Cost::new(5, 2);
        let b = Cost::new(7, 4);
        assert_eq!(a.then(b), Cost::new(12, 6));
    }

    #[test]
    fn parallel_composition_adds_work_maxes_span() {
        let a = Cost::new(5, 2);
        let b = Cost::new(7, 4);
        assert_eq!(a.par(b), Cost::new(12, 4));
        assert_eq!(b.par(a), Cost::new(12, 4));
    }

    #[test]
    fn flat_and_serial() {
        assert_eq!(Cost::flat(0), Cost::ZERO);
        assert_eq!(Cost::flat(10), Cost::new(10, 1));
        assert_eq!(Cost::serial(10), Cost::new(10, 10));
    }

    #[test]
    fn repeat_scales_sequentially() {
        assert_eq!(Cost::new(3, 2).repeat(4), Cost::new(12, 8));
        assert_eq!(Cost::UNIT.repeat(0), Cost::ZERO);
    }

    #[test]
    fn effective_time_is_brent_bound() {
        let c = Cost::new(100, 10);
        assert!((c.effective_time(10) - 20.0).abs() < 1e-9);
        assert!((c.effective_time(1) - 110.0).abs() < 1e-9);
    }

    #[test]
    fn parallelism_ratio() {
        assert!((Cost::new(100, 10).parallelism() - 10.0).abs() < 1e-9);
        assert!(Cost::new(5, 0).parallelism().is_infinite());
        assert!((Cost::ZERO.parallelism() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sum_iterates_sequentially() {
        let total: Cost = vec![Cost::new(1, 1), Cost::new(2, 2), Cost::new(3, 1)]
            .into_iter()
            .sum();
        assert_eq!(total, Cost::new(6, 4));
    }

    #[test]
    fn par_over_many() {
        let total = Cost::par_over((0..8).map(|_| Cost::new(3, 3)));
        assert_eq!(total, Cost::new(24, 3));
    }

    #[test]
    fn add_operator_is_sequential() {
        let mut c = Cost::new(1, 1);
        c += Cost::new(2, 2);
        assert_eq!(c, Cost::new(3, 3));
        assert_eq!(Cost::new(1, 1) + Cost::new(4, 2), Cost::new(5, 3));
    }
}
