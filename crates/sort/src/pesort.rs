//! Parallel entropy sort PESort (paper Definition 32, Theorem 33).
//!
//! PESort is a quicksort variant: the pivot is chosen by [`crate::ppivot`]
//! (so it always lies in the middle two quartiles), the input is partitioned
//! into a lower part, a middle part equal to the pivot and an upper part, and
//! the lower/upper parts are sorted recursively (in parallel).  An item that
//! occurs `r` times out of `n` traverses only `O(log(n / r))` recursion
//! levels, which is where the `O(nH + n)` work bound comes from; the recursion
//! depth is `O(log n)`, giving `O(log² n)` span.
//!
//! Equal items are *kept in their original relative order* (every partition is
//! a stable three-way split), so the grouped output can be used directly to
//! combine duplicate operations in a batch.

use crate::ppivot::ppivot_by;
use std::cmp::Ordering;
use wsm_model::{ceil_log2, Cost};

/// Inputs below this size are sorted directly (and sequentially).
const SMALL: usize = 24;
/// Inputs below this size do not spawn parallel recursive calls.
const PAR_GRAIN: usize = 2048;

/// Statistics of one sort invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Analytic work/span of the sort in the QRMW model.
    pub cost: Cost,
    /// Number of key comparisons actually performed.
    pub comparisons: u64,
}

/// Sorts `items` by `cmp`, returning the sorted vector and the analytic cost.
///
/// The sort is stable for items that compare equal.
pub fn pesort_by<T, F>(items: Vec<T>, cmp: &F) -> (Vec<T>, Cost)
where
    T: Clone + Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    pesort_rec(items, cmp)
}

/// Sorts `items` by the natural order, returning the sorted vector and cost.
pub fn pesort<T: Ord + Clone + Send>(items: Vec<T>) -> (Vec<T>, Cost) {
    pesort_by(items, &T::cmp)
}

/// Sorts the *indices* of `keys` by key, grouping equal keys: the result is a
/// list of `(key, positions)` pairs in ascending key order, where `positions`
/// are the indices of that key's occurrences in their original order.
///
/// This is the "sort the batch and combine duplicate operations" step of M1
/// and M2 (Section 6.1 step "ESort + Combine").  Convenience wrapper around
/// [`pesort_group_into`] for one-shot callers; hot paths that group a batch
/// per call should hold a [`SortScratch`] + [`GroupedBatch`] and use
/// [`pesort_group_into`] directly so no per-batch allocation survives
/// steady state.
pub fn pesort_group<K: Ord + Clone + Send + Sync>(keys: &[K]) -> (Vec<(K, Vec<usize>)>, Cost) {
    let mut scratch = SortScratch::default();
    let mut grouped = GroupedBatch::default();
    let cost = pesort_group_into(keys, &mut scratch, &mut grouped);
    (grouped.into_vec(), cost)
}

/// Reusable scratch buffers for [`pesort_group_into`]: the index permutation
/// being sorted plus a pool of recycled partition temporaries.  Holding one
/// of these across batches makes repeated grouping allocation-free in steady
/// state.
#[derive(Debug, Default)]
pub struct SortScratch {
    /// The index permutation under sort.
    idx: Vec<u32>,
    /// Recycled partition temporaries (lower/middle/upper index buffers).
    pool: Vec<Vec<u32>>,
}

/// Keep at most this many recycled buffers per scratch; parallel recursion
/// seeds fresh pools, and unbounded merging back would hoard memory.
const SCRATCH_POOL_CAP: usize = 12;

/// A batch grouped by key: for group `i`, `keys()[i]` occurs at the original
/// positions `positions(i)` (ascending, i.e. arrival order).  The backing
/// buffers are reused across [`pesort_group_into`] calls.
#[derive(Debug)]
pub struct GroupedBatch<K> {
    keys: Vec<K>,
    /// `offsets[i]..offsets[i + 1]` indexes `positions` for group `i`.
    offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl<K> Default for GroupedBatch<K> {
    fn default() -> Self {
        GroupedBatch {
            keys: Vec::new(),
            offsets: Vec::new(),
            positions: Vec::new(),
        }
    }
}

impl<K> GroupedBatch<K> {
    /// Number of groups (distinct keys).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the batch had no operations.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The distinct keys in ascending order.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// The original positions of group `i`'s occurrences, in arrival order.
    pub fn positions(&self, i: usize) -> &[u32] {
        &self.positions[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates `(key, positions)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &[u32])> {
        (0..self.len()).map(move |i| (&self.keys[i], self.positions(i)))
    }

    /// Clears the groups, keeping the backing buffers for reuse.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.offsets.clear();
        self.positions.clear();
    }

    /// Converts into the owned `(key, positions)` representation.
    pub fn into_vec(self) -> Vec<(K, Vec<usize>)> {
        let GroupedBatch {
            keys,
            offsets,
            positions,
        } = self;
        keys.into_iter()
            .enumerate()
            .map(|(i, k)| {
                let range = offsets[i] as usize..offsets[i + 1] as usize;
                (k, positions[range].iter().map(|&p| p as usize).collect())
            })
            .collect()
    }
}

/// [`pesort_group`] with caller-provided scratch and output buffers: sorts a
/// permutation of indices (no key is cloned during the sort) and reuses the
/// partition temporaries pooled in `scratch`, so a caller that processes one
/// batch after another allocates nothing once the buffers have grown to the
/// steady-state batch size.  Each distinct key is cloned exactly once, into
/// `out`.
pub fn pesort_group_into<K: Ord + Clone + Send + Sync>(
    keys: &[K],
    scratch: &mut SortScratch,
    out: &mut GroupedBatch<K>,
) -> Cost {
    out.clear();
    let n = keys.len();
    if n == 0 {
        return Cost::ZERO;
    }
    let n32 = u32::try_from(n).expect("batch larger than u32::MAX operations");
    scratch.idx.clear();
    scratch.idx.extend(0..n32);
    let cmp = |a: &u32, b: &u32| keys[*a as usize].cmp(&keys[*b as usize]);
    let sort_cost = pesort_idx(&mut scratch.idx, &cmp, &mut scratch.pool);

    // Group the sorted permutation: equal keys are adjacent, and within a
    // group positions are ascending because the sort is stable by key.
    out.positions.extend_from_slice(&scratch.idx);
    out.offsets.push(0);
    let mut start = 0usize;
    while start < n {
        let key = &keys[out.positions[start] as usize];
        let mut end = start + 1;
        while end < n && keys[out.positions[end] as usize] == *key {
            end += 1;
        }
        out.keys.push(key.clone());
        out.offsets.push(end as u32);
        start = end;
    }
    // Grouping is a linear scan, perfectly parallelisable as a prefix
    // computation; charge its work flat.
    sort_cost.then(Cost::flat(n as u64))
}

/// PESort over an index permutation, with pooled partition temporaries.
///
/// Identical recursion shape and analytic cost to [`pesort_by`], but the
/// lower/middle/upper temporaries are drawn from (and returned to) `pool`
/// instead of freshly allocated, and the base case uses an in-place unstable
/// sort with an index tie-break — indices are distinct, so the tie-broken
/// order equals the stable-by-key order without the stable sort's scratch
/// allocation.
fn pesort_idx<F>(idx: &mut [u32], cmp: &F, pool: &mut Vec<Vec<u32>>) -> Cost
where
    F: Fn(&u32, &u32) -> Ordering + Sync,
{
    let k = idx.len();
    if k <= SMALL {
        idx.sort_unstable_by(|a, b| cmp(a, b).then_with(|| a.cmp(b)));
        let k = k as u64;
        return Cost::serial(k * (u64::from(ceil_log2(k.max(1))) + 1));
    }
    let (pivot_pos, pivot_cost) = ppivot_by(idx, cmp);
    let pivot = idx[pivot_pos];

    // Stable three-way partition through pooled temporaries, copied back into
    // the same slice.  The paper parallelises this with a prefix-sum; the
    // analytic span charged below reflects that (DESIGN.md substitution #1).
    let mut lower = pool.pop().unwrap_or_default();
    let mut middle = pool.pop().unwrap_or_default();
    let mut upper = pool.pop().unwrap_or_default();
    for &i in idx.iter() {
        match cmp(&i, &pivot) {
            Ordering::Less => lower.push(i),
            Ordering::Equal => middle.push(i),
            Ordering::Greater => upper.push(i),
        }
    }
    let (lower_len, middle_len) = (lower.len(), middle.len());
    idx[..lower_len].copy_from_slice(&lower);
    idx[lower_len..lower_len + middle_len].copy_from_slice(&middle);
    idx[lower_len + middle_len..].copy_from_slice(&upper);
    for mut buf in [lower, middle, upper] {
        buf.clear();
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(buf);
        }
    }
    let partition_cost = Cost::new(k as u64, u64::from(ceil_log2(k as u64)) + 1);

    let (lower_slice, rest) = idx.split_at_mut(lower_len);
    let (_, upper_slice) = rest.split_at_mut(middle_len);
    let (lower_cost, upper_cost) = if k >= PAR_GRAIN {
        // Parallel branches cannot share the pool; the stolen side seeds its
        // own (only O(log n) such seeds exist above the grain).
        let mut right_pool = Vec::new();
        let costs = rayon::join(
            || pesort_idx(lower_slice, cmp, pool),
            || pesort_idx(upper_slice, cmp, &mut right_pool),
        );
        for buf in right_pool {
            if pool.len() < SCRATCH_POOL_CAP {
                pool.push(buf);
            }
        }
        costs
    } else {
        (
            pesort_idx(lower_slice, cmp, pool),
            pesort_idx(upper_slice, cmp, pool),
        )
    };

    pivot_cost
        .then(partition_cost)
        .then(lower_cost.par(upper_cost))
        .then(Cost::UNIT)
}

fn small_sort<T, F>(mut items: Vec<T>, cmp: &F) -> (Vec<T>, Cost)
where
    T: Clone,
    F: Fn(&T, &T) -> Ordering,
{
    let k = items.len() as u64;
    items.sort_by(cmp);
    (
        items,
        Cost::serial(k * (u64::from(ceil_log2(k.max(1))) + 1)),
    )
}

fn pesort_rec<T, F>(items: Vec<T>, cmp: &F) -> (Vec<T>, Cost)
where
    T: Clone + Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let k = items.len();
    if k <= SMALL {
        return small_sort(items, cmp);
    }
    let (pivot_idx, pivot_cost) = ppivot_by(&items, cmp);
    let pivot = items[pivot_idx].clone();

    // Stable three-way partition.  The paper parallelises this with a
    // prefix-sum; the analytic span charged below reflects that, while the
    // concrete partition is a sequential scan (see DESIGN.md substitution #1).
    let mut lower = Vec::new();
    let mut middle = Vec::new();
    let mut upper = Vec::new();
    for item in items {
        match cmp(&item, &pivot) {
            Ordering::Less => lower.push(item),
            Ordering::Equal => middle.push(item),
            Ordering::Greater => upper.push(item),
        }
    }
    let partition_cost = Cost::new(k as u64, u64::from(ceil_log2(k as u64)) + 1);

    let ((mut sorted_lower, lower_cost), (sorted_upper, upper_cost)) = if k >= PAR_GRAIN {
        rayon::join(|| pesort_rec(lower, cmp), || pesort_rec(upper, cmp))
    } else {
        (pesort_rec(lower, cmp), pesort_rec(upper, cmp))
    };

    sorted_lower.extend(middle);
    sorted_lower.extend(sorted_upper);
    let total = pivot_cost
        .then(partition_cost)
        .then(lower_cost.par(upper_cost))
        .then(Cost::UNIT);
    (sorted_lower, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_model::entropy_bound;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn sorts_like_std() {
        let mut state = 42;
        for n in [0usize, 1, 2, 10, 100, 1000, 5000] {
            let items: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 500).collect();
            let mut expected = items.clone();
            expected.sort();
            let (got, _) = pesort(items);
            assert_eq!(got, expected, "n={n}");
        }
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let asc: Vec<u64> = (0..3000).collect();
        let desc: Vec<u64> = (0..3000).rev().collect();
        assert_eq!(pesort(asc.clone()).0, asc);
        assert_eq!(pesort(desc).0, asc);
    }

    #[test]
    fn grouping_preserves_arrival_order_within_key() {
        let keys = vec![5u64, 1, 5, 3, 1, 5, 3, 3, 3];
        let (groups, _) = pesort_group(&keys);
        let keys_only: Vec<u64> = groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys_only, vec![1, 3, 5]);
        let by_key: std::collections::BTreeMap<u64, Vec<usize>> = groups.into_iter().collect();
        assert_eq!(by_key[&1], vec![1, 4]);
        assert_eq!(by_key[&3], vec![3, 6, 7, 8]);
        assert_eq!(by_key[&5], vec![0, 2, 5]);
    }

    #[test]
    fn grouped_batch_reuse_matches_one_shot_grouping() {
        let mut state = 123;
        let mut scratch = SortScratch::default();
        let mut grouped = GroupedBatch::default();
        for n in [0usize, 1, 5, 100, 3000] {
            let keys: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 37).collect();
            let (expected, expected_cost) = pesort_group(&keys);
            let cost = pesort_group_into(&keys, &mut scratch, &mut grouped);
            assert_eq!(cost, expected_cost, "n={n}");
            assert_eq!(grouped.len(), expected.len(), "n={n}");
            for ((k, positions), (ek, epositions)) in grouped.iter().zip(&expected) {
                assert_eq!(k, ek);
                let got: Vec<usize> = positions.iter().map(|&p| p as usize).collect();
                assert_eq!(&got, epositions);
            }
        }
    }

    #[test]
    fn grouped_batch_positions_cover_input_exactly_once() {
        let mut scratch = SortScratch::default();
        let mut grouped = GroupedBatch::default();
        let keys = vec![3u64, 1, 3, 3, 2, 1, 2];
        pesort_group_into(&keys, &mut scratch, &mut grouped);
        let mut seen: Vec<u32> = grouped
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..keys.len() as u32).collect::<Vec<_>>());
        assert_eq!(grouped.keys(), &[1, 2, 3]);
    }

    #[test]
    fn stability_on_equal_keys() {
        // Sort pairs by first component only; second component records arrival
        // order and must remain ascending within each key.
        let mut state = 9;
        let items: Vec<(u64, usize)> = (0..4000).map(|i| (xorshift(&mut state) % 16, i)).collect();
        let (sorted, _) = pesort_by(items, &|a: &(u64, usize), b: &(u64, usize)| a.0.cmp(&b.0));
        for w in sorted.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "equal keys reordered");
            }
        }
    }

    #[test]
    fn work_tracks_entropy_bound() {
        // Low-entropy input (few distinct values, very skewed) must cost much
        // less work than a high-entropy input of the same length.
        let n = 20_000usize;
        let mut state = 77;
        let low: Vec<u64> = (0..n)
            .map(|_| {
                if xorshift(&mut state) % 100 < 95 {
                    0
                } else {
                    xorshift(&mut state) % 4
                }
            })
            .collect();
        let high: Vec<u64> = (0..n).map(|_| xorshift(&mut state)).collect();
        let (_, low_cost) = pesort(low.clone());
        let (_, high_cost) = pesort(high.clone());
        assert!(
            (low_cost.work as f64) < (high_cost.work as f64) * 0.5,
            "low-entropy sort ({}) should be far cheaper than high-entropy ({})",
            low_cost.work,
            high_cost.work
        );
        // And both are within a constant factor of n(H+1).
        let low_bound = entropy_bound(&low);
        let high_bound = entropy_bound(&high);
        assert!((low_cost.work as f64) < 16.0 * low_bound + 1000.0);
        assert!((high_cost.work as f64) < 16.0 * high_bound + 1000.0);
    }

    #[test]
    fn span_is_polylog() {
        let mut state = 5;
        let items: Vec<u64> = (0..50_000).map(|_| xorshift(&mut state)).collect();
        let (_, cost) = pesort(items);
        let logn = (50_000f64).log2();
        assert!(
            (cost.span as f64) < 8.0 * logn * logn,
            "span {} exceeds O(log^2 n)",
            cost.span
        );
    }

    #[test]
    fn all_equal_input_is_linear_work() {
        let items = vec![7u64; 10_000];
        let (sorted, cost) = pesort(items.clone());
        assert_eq!(sorted, items);
        assert!(cost.work < 20 * 10_000, "all-equal input must be ~linear");
    }
}
