//! Parallel entropy sort PESort (paper Definition 32, Theorem 33).
//!
//! PESort is a quicksort variant: the pivot is chosen by [`crate::ppivot`]
//! (so it always lies in the middle two quartiles), the input is partitioned
//! into a lower part, a middle part equal to the pivot and an upper part, and
//! the lower/upper parts are sorted recursively (in parallel).  An item that
//! occurs `r` times out of `n` traverses only `O(log(n / r))` recursion
//! levels, which is where the `O(nH + n)` work bound comes from; the recursion
//! depth is `O(log n)`, giving `O(log² n)` span.
//!
//! Equal items are *kept in their original relative order* (every partition is
//! a stable three-way split), so the grouped output can be used directly to
//! combine duplicate operations in a batch.

use crate::ppivot::ppivot_by;
use std::cmp::Ordering;
use wsm_model::{ceil_log2, Cost};

/// Inputs below this size are sorted directly (and sequentially).
const SMALL: usize = 24;
/// Inputs below this size do not spawn parallel recursive calls.
const PAR_GRAIN: usize = 2048;

/// Statistics of one sort invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Analytic work/span of the sort in the QRMW model.
    pub cost: Cost,
    /// Number of key comparisons actually performed.
    pub comparisons: u64,
}

/// Sorts `items` by `cmp`, returning the sorted vector and the analytic cost.
///
/// The sort is stable for items that compare equal.
pub fn pesort_by<T, F>(items: Vec<T>, cmp: &F) -> (Vec<T>, Cost)
where
    T: Clone + Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    pesort_rec(items, cmp)
}

/// Sorts `items` by the natural order, returning the sorted vector and cost.
pub fn pesort<T: Ord + Clone + Send>(items: Vec<T>) -> (Vec<T>, Cost) {
    pesort_by(items, &T::cmp)
}

/// Sorts the *indices* of `keys` by key, grouping equal keys: the result is a
/// list of `(key, positions)` pairs in ascending key order, where `positions`
/// are the indices of that key's occurrences in their original order.
///
/// This is the "sort the batch and combine duplicate operations" step of M1
/// and M2 (Section 6.1 step "ESort + Combine").
pub fn pesort_group<K: Ord + Clone + Send + Sync>(keys: &[K]) -> (Vec<(K, Vec<usize>)>, Cost) {
    let tagged: Vec<(K, usize)> = keys.iter().cloned().zip(0..keys.len()).collect();
    let (sorted, cost) = pesort_by(tagged, &|a: &(K, usize), b: &(K, usize)| a.0.cmp(&b.0));
    let mut groups: Vec<(K, Vec<usize>)> = Vec::new();
    for (key, idx) in sorted {
        match groups.last_mut() {
            Some((k, positions)) if *k == key => positions.push(idx),
            _ => groups.push((key, vec![idx])),
        }
    }
    // Grouping is a linear scan, perfectly parallelisable as a prefix
    // computation; charge its work flat.
    let group_cost = Cost::flat(keys.len() as u64);
    (groups, cost.then(group_cost))
}

fn small_sort<T, F>(mut items: Vec<T>, cmp: &F) -> (Vec<T>, Cost)
where
    T: Clone,
    F: Fn(&T, &T) -> Ordering,
{
    let k = items.len() as u64;
    items.sort_by(cmp);
    (
        items,
        Cost::serial(k * (u64::from(ceil_log2(k.max(1))) + 1)),
    )
}

fn pesort_rec<T, F>(items: Vec<T>, cmp: &F) -> (Vec<T>, Cost)
where
    T: Clone + Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let k = items.len();
    if k <= SMALL {
        return small_sort(items, cmp);
    }
    let (pivot_idx, pivot_cost) = ppivot_by(&items, cmp);
    let pivot = items[pivot_idx].clone();

    // Stable three-way partition.  The paper parallelises this with a
    // prefix-sum; the analytic span charged below reflects that, while the
    // concrete partition is a sequential scan (see DESIGN.md substitution #1).
    let mut lower = Vec::new();
    let mut middle = Vec::new();
    let mut upper = Vec::new();
    for item in items {
        match cmp(&item, &pivot) {
            Ordering::Less => lower.push(item),
            Ordering::Equal => middle.push(item),
            Ordering::Greater => upper.push(item),
        }
    }
    let partition_cost = Cost::new(k as u64, u64::from(ceil_log2(k as u64)) + 1);

    let ((mut sorted_lower, lower_cost), (sorted_upper, upper_cost)) = if k >= PAR_GRAIN {
        rayon::join(|| pesort_rec(lower, cmp), || pesort_rec(upper, cmp))
    } else {
        (pesort_rec(lower, cmp), pesort_rec(upper, cmp))
    };

    sorted_lower.extend(middle);
    sorted_lower.extend(sorted_upper);
    let total = pivot_cost
        .then(partition_cost)
        .then(lower_cost.par(upper_cost))
        .then(Cost::UNIT);
    (sorted_lower, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_model::entropy_bound;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn sorts_like_std() {
        let mut state = 42;
        for n in [0usize, 1, 2, 10, 100, 1000, 5000] {
            let items: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 500).collect();
            let mut expected = items.clone();
            expected.sort();
            let (got, _) = pesort(items);
            assert_eq!(got, expected, "n={n}");
        }
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let asc: Vec<u64> = (0..3000).collect();
        let desc: Vec<u64> = (0..3000).rev().collect();
        assert_eq!(pesort(asc.clone()).0, asc);
        assert_eq!(pesort(desc).0, asc);
    }

    #[test]
    fn grouping_preserves_arrival_order_within_key() {
        let keys = vec![5u64, 1, 5, 3, 1, 5, 3, 3, 3];
        let (groups, _) = pesort_group(&keys);
        let keys_only: Vec<u64> = groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys_only, vec![1, 3, 5]);
        let by_key: std::collections::BTreeMap<u64, Vec<usize>> = groups.into_iter().collect();
        assert_eq!(by_key[&1], vec![1, 4]);
        assert_eq!(by_key[&3], vec![3, 6, 7, 8]);
        assert_eq!(by_key[&5], vec![0, 2, 5]);
    }

    #[test]
    fn stability_on_equal_keys() {
        // Sort pairs by first component only; second component records arrival
        // order and must remain ascending within each key.
        let mut state = 9;
        let items: Vec<(u64, usize)> = (0..4000).map(|i| (xorshift(&mut state) % 16, i)).collect();
        let (sorted, _) = pesort_by(items, &|a: &(u64, usize), b: &(u64, usize)| a.0.cmp(&b.0));
        for w in sorted.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "equal keys reordered");
            }
        }
    }

    #[test]
    fn work_tracks_entropy_bound() {
        // Low-entropy input (few distinct values, very skewed) must cost much
        // less work than a high-entropy input of the same length.
        let n = 20_000usize;
        let mut state = 77;
        let low: Vec<u64> = (0..n)
            .map(|_| {
                if xorshift(&mut state) % 100 < 95 {
                    0
                } else {
                    xorshift(&mut state) % 4
                }
            })
            .collect();
        let high: Vec<u64> = (0..n).map(|_| xorshift(&mut state)).collect();
        let (_, low_cost) = pesort(low.clone());
        let (_, high_cost) = pesort(high.clone());
        assert!(
            (low_cost.work as f64) < (high_cost.work as f64) * 0.5,
            "low-entropy sort ({}) should be far cheaper than high-entropy ({})",
            low_cost.work,
            high_cost.work
        );
        // And both are within a constant factor of n(H+1).
        let low_bound = entropy_bound(&low);
        let high_bound = entropy_bound(&high);
        assert!((low_cost.work as f64) < 16.0 * low_bound + 1000.0);
        assert!((high_cost.work as f64) < 16.0 * high_bound + 1000.0);
    }

    #[test]
    fn span_is_polylog() {
        let mut state = 5;
        let items: Vec<u64> = (0..50_000).map(|_| xorshift(&mut state)).collect();
        let (_, cost) = pesort(items);
        let logn = (50_000f64).log2();
        assert!(
            (cost.span as f64) < 8.0 * logn * logn,
            "span {} exceeds O(log^2 n)",
            cost.span
        );
    }

    #[test]
    fn all_equal_input_is_linear_work() {
        let items = vec![7u64; 10_000];
        let (sorted, cost) = pesort(items.clone());
        assert_eq!(sorted, items);
        assert!(cost.work < 20 * 10_000, "all-equal input must be ~linear");
    }
}
