//! # wsm-sort — entropy-optimal sorting (paper Appendix A.3)
//!
//! The working-set maps must *combine duplicate operations* inside every batch
//! without paying the `Θ(b log b)` cost of a comparison sort — otherwise a
//! batch of `b` searches for the same hot item would cost more than the
//! working-set bound allows (Section 3).  The paper solves this with
//! entropy-optimal sorting:
//!
//! * [`esort`] — the sequential **ESort** (Definition 29): insert the batch
//!   items into a working-set dictionary (Iacono's structure), collect each
//!   segment in sorted order and merge.  Takes `Θ(IW_L) ⊆ O(nH + n)` time
//!   (Theorem 30).
//! * [`pesort`] — the parallel **PESort** (Definition 32): a quicksort whose
//!   pivot is chosen by the block-median [`ppivot`] algorithm (Lemma 34) so it
//!   always falls in the middle two quartiles, giving `O(nH + n)` work and
//!   `O(log² n)` span (Theorem 33).
//! * Entropy and working-set bound helpers are re-exported from
//!   [`wsm_model::wsbound`].
//!
//! Both sorts report grouped output (equal keys adjacent, original order
//! preserved within a group), which is exactly the "combine duplicates" step
//! that M1 and M2 apply to every cut batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod esort;
pub mod pesort;
pub mod ppivot;

pub use esort::{esort, esort_group};
pub use pesort::{
    pesort, pesort_by, pesort_group, pesort_group_into, GroupedBatch, SortScratch, SortStats,
};
pub use ppivot::ppivot;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sorts_agree_on_random_input() {
        let mut state = 7u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let items: Vec<u64> = (0..2000).map(|_| next() % 97).collect();
        let (e_sorted, _) = esort(&items);
        let (p_sorted, _) = pesort(items.clone());
        let mut std_sorted = items;
        std_sorted.sort();
        assert_eq!(e_sorted, std_sorted);
        assert_eq!(p_sorted, std_sorted);
    }
}
