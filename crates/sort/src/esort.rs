//! Sequential entropy sort ESort (paper Definition 29, Theorem 30).
//!
//! ESort sorts a sequence by inserting its items into a working-set dictionary
//! (Iacono's structure), tagging each distinct item with the list of its
//! positions, then collecting each segment of the dictionary in sorted order
//! and merging the segment lists in order of increasing capacity.  Duplicates
//! of an item only pay `O(1)` amortised after the first occurrence (they hit
//! the front of the dictionary), so the total time is `Θ(IW_L) ⊆ O(nH + n)` —
//! the entropy bound (Theorem 30), which is also a lower bound for any
//! comparison sort (Theorem 28 / Theorem 31).

use wsm_model::Cost;
use wsm_seq::IaconoMap;

/// Sorts `items`, returning the fully expanded sorted sequence (duplicates
/// adjacent, in their original relative order) and the analytic cost.
pub fn esort<K: Ord + Clone>(items: &[K]) -> (Vec<K>, Cost) {
    let (groups, cost) = esort_group(items);
    let mut out = Vec::with_capacity(items.len());
    for (key, positions) in groups {
        out.extend(std::iter::repeat_n(key, positions.len()));
    }
    (out, cost)
}

/// Sorts the indices of `items` by item value and groups duplicates: returns
/// `(item, positions)` pairs in ascending item order, where `positions` lists
/// the occurrences of that item in arrival order.  The cost is dominated by
/// the working-set dictionary accesses (`Θ(IW_L)`).
pub fn esort_group<K: Ord + Clone>(items: &[K]) -> (Vec<(K, Vec<usize>)>, Cost) {
    // The dictionary D of Definition 29: a working-set structure whose values
    // are the tag lists of positions.
    let mut dict: IaconoMap<K, Vec<usize>> = IaconoMap::new();
    let mut cost = Cost::ZERO;
    for (pos, item) in items.iter().enumerate() {
        let (found, c) = dict.access(item);
        cost += c;
        if found.is_none() {
            let (_, c) = dict.insert_item(item.clone(), Vec::new());
            cost += c;
        }
        dict.peek_mut(item)
            .expect("item present after access/insert")
            .push(pos);
        cost += Cost::UNIT;
    }

    // Collect each dictionary tree in sorted order and merge them in order of
    // increasing capacity.  Each tree is at least (quadratically) larger than
    // the previous, so the merges cost O(u) in total.
    let mut merged: Vec<(K, Vec<usize>)> = Vec::new();
    for tree in dict.trees_items_sorted() {
        merged = merge_sorted(merged, tree);
    }
    cost += Cost::flat(merged.len() as u64 + items.len() as u64);
    (merged, cost)
}

fn merge_sorted<K: Ord, V>(a: Vec<(K, V)>, b: Vec<(K, V)>) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if x.0 <= y.0 {
                    out.push(a.next().expect("peeked"));
                } else {
                    out.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(a.next().expect("peeked")),
            (None, Some(_)) => out.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_model::{entropy_bound, insert_working_set_bound};

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn sorts_correctly() {
        let mut state = 11;
        for n in [0usize, 1, 5, 100, 2000] {
            let items: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 64).collect();
            let mut expected = items.clone();
            expected.sort();
            let (got, _) = esort(&items);
            assert_eq!(got, expected, "n={n}");
        }
    }

    #[test]
    fn groups_list_positions_in_arrival_order() {
        let items = vec![9u64, 2, 9, 9, 4, 2];
        let (groups, _) = esort_group(&items);
        assert_eq!(
            groups,
            vec![(2, vec![1, 5]), (4, vec![4]), (9, vec![0, 2, 3])]
        );
    }

    #[test]
    fn cost_matches_insert_working_set_bound_shape() {
        // Theorem 30: ESort takes Θ(IW_L) steps.  Check the measured cost is
        // within a constant factor of IW_L on both skewed and uniform inputs.
        let mut state = 13;
        let n = 4000usize;
        let skewed: Vec<u64> = (0..n)
            .map(|_| {
                if xorshift(&mut state) % 10 < 9 {
                    xorshift(&mut state) % 4
                } else {
                    xorshift(&mut state) % 1000
                }
            })
            .collect();
        let uniform: Vec<u64> = (0..n).map(|_| xorshift(&mut state)).collect();
        for items in [skewed, uniform] {
            let (_, cost) = esort(&items);
            let iw = insert_working_set_bound(&items) as f64;
            let ratio = cost.work as f64 / iw.max(1.0);
            assert!(
                ratio < 40.0,
                "ESort work {} not within constant factor of IW_L {}",
                cost.work,
                iw
            );
        }
    }

    #[test]
    fn low_entropy_inputs_are_cheap() {
        let n = 10_000usize;
        let mut state = 21;
        let constant: Vec<u64> = vec![3; n];
        let uniform: Vec<u64> = (0..n).map(|_| xorshift(&mut state)).collect();
        let (_, c_const) = esort(&constant);
        let (_, c_uniform) = esort(&uniform);
        assert!(
            c_const.work * 3 < c_uniform.work,
            "constant input {} should be much cheaper than uniform {}",
            c_const.work,
            c_uniform.work
        );
        assert!((c_const.work as f64) < 30.0 * entropy_bound(&constant) + 200.0);
    }

    #[test]
    fn esort_and_std_sort_agree_on_adversarial_patterns() {
        let saw: Vec<u64> = (0..512u64).map(|i| i % 7).collect();
        let organ: Vec<u64> = (0..256u64).chain((0..256u64).rev()).collect();
        for items in [saw, organ] {
            let mut expected = items.clone();
            expected.sort();
            assert_eq!(esort(&items).0, expected);
        }
    }
}
