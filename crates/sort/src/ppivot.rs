//! The parallel pivot algorithm PPivot (paper Lemma 34).
//!
//! Partition the input into blocks of size `log k`, take the median of each
//! block, and output the median of those medians.  The output is guaranteed to
//! lie in the two middle quartiles of the input, which bounds the recursion
//! depth of PESort by `O(log n)` levels.  Work is `O(k)` and span `O(log k)`.

use std::cmp::Ordering;
use wsm_model::{ceil_log2, Cost};

/// Picks a pivot guaranteed to lie within the two middle quartiles of `items`
/// (by the given comparator).  Returns the index of the chosen pivot in
/// `items` and the analytic cost of the selection.
///
/// # Panics
/// Panics if `items` is empty.
pub fn ppivot_by<T, F: Fn(&T, &T) -> Ordering>(items: &[T], cmp: &F) -> (usize, Cost) {
    assert!(!items.is_empty(), "cannot pick a pivot from an empty slice");
    let k = items.len();
    if k <= 4 {
        // Tiny inputs: the median of the whole slice.
        let mut idx: Vec<usize> = (0..k).collect();
        idx.sort_by(|&a, &b| cmp(&items[a], &items[b]));
        return (idx[k / 2], Cost::serial(k as u64 + 1));
    }
    let block = (ceil_log2(k as u64) as usize).max(2);
    // Median index of each block, found by a linear-time selection.
    let mut block_medians: Vec<usize> = Vec::with_capacity(k / block + 1);
    let mut start = 0;
    while start < k {
        let end = (start + block).min(k);
        let mut idx: Vec<usize> = (start..end).collect();
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| cmp(&items[a], &items[b]));
        block_medians.push(idx[mid]);
        start = end;
    }
    // Median of the block medians.
    let mid = block_medians.len() / 2;
    block_medians.select_nth_unstable_by(mid, |&a, &b| cmp(&items[a], &items[b]));
    let pivot_idx = block_medians[mid];
    // Work O(k): each block costs O(block); span O(log k): blocks in parallel
    // plus sorting the c = k / log k medians.
    let cost = Cost::new(
        (2 * k) as u64,
        (2 * ceil_log2(k as u64) as usize + 2) as u64,
    );
    (pivot_idx, cost)
}

/// [`ppivot_by`] with the natural ordering.
pub fn ppivot<T: Ord>(items: &[T]) -> (usize, Cost) {
    ppivot_by(items, &T::cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks the middle-quartile guarantee of Lemma 34: the chosen pivot's
    /// rank must lie in `[k/4, 3k/4]` (inclusive bounds with slack for ties).
    fn assert_middle_quartile(items: &[u64]) {
        let (idx, _) = ppivot(items);
        let pivot = items[idx];
        let k = items.len();
        let below = items.iter().filter(|&&x| x < pivot).count();
        let above = items.iter().filter(|&&x| x > pivot).count();
        assert!(
            below <= 3 * k / 4 && above <= 3 * k / 4,
            "pivot {pivot} outside middle quartiles: below={below} above={above} k={k}"
        );
    }

    #[test]
    fn pivot_within_middle_quartiles_various_inputs() {
        let ascending: Vec<u64> = (0..1000).collect();
        let descending: Vec<u64> = (0..1000).rev().collect();
        let mut state = 3u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let random: Vec<u64> = (0..1000).map(|_| next()).collect();
        let organ_pipe: Vec<u64> = (0..500).chain((0..500).rev()).collect();
        for input in [ascending, descending, random, organ_pipe] {
            assert_middle_quartile(&input);
        }
    }

    #[test]
    fn pivot_on_tiny_and_duplicate_inputs() {
        assert_middle_quartile(&[1]);
        assert_middle_quartile(&[2, 1]);
        assert_middle_quartile(&[3, 1, 2]);
        assert_middle_quartile(&[5; 100]);
        assert_middle_quartile(&[1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn cost_is_linear_work_log_span() {
        let items: Vec<u64> = (0..4096).collect();
        let (_, cost) = ppivot(&items);
        assert!(cost.work <= 4 * 4096);
        assert!(cost.span <= 40);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let empty: Vec<u64> = Vec::new();
        let _ = ppivot(&empty);
    }
}
