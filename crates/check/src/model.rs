//! The deterministic interleaving explorer.
//!
//! [`Model::check`] runs a closure (the *harness*) repeatedly, once per
//! schedule.  Inside a harness, every operation on the shim types of
//! [`crate::sync`] and every [`crate::thread::spawn`]/`join`/`yield_now`
//! is a *scheduling point*: the thread parks and a central scheduler decides
//! who runs next.  The scheduler drives a depth-first search over those
//! decisions, so the harness is executed under **every** interleaving the
//! search frontier contains:
//!
//! * **Iterative context bounding** (CHESS-style): a schedule may contain at
//!   most `preemption_bound` *preemptions* — switches away from a thread that
//!   could have continued.  Voluntary switches (blocking on a mutex or
//!   condvar, finishing, yields being re-run later) are free.  Most real
//!   concurrency bugs manifest within two preemptions; the bound turns an
//!   astronomically large schedule space into an exhaustively explorable one.
//! * **Sleep-set pruning**: after the search has explored running transition
//!   `t` at a decision point, sibling branches keep `t` asleep until some
//!   executed transition *conflicts* with it (same location, at least one
//!   write).  Schedules that merely commute independent steps are explored
//!   once instead of `n!` times.  (Note the classic caveat: combined with a
//!   finite preemption bound, sleep sets may prune an execution whose only
//!   representative under the bound was the pruned one.  Harness acceptance
//!   tests therefore also run with pruning disabled where cheap, and the
//!   seeded-bug self-tests prove detection power empirically.)
//! * **TSO store-buffer mode** ([`Model::tso`]): stores with an ordering
//!   weaker than `SeqCst` may be held in a per-thread store buffer and
//!   drained later (a separate scheduling choice), while the storing thread
//!   reads its own buffered values (store→load forwarding).  RMWs, `SeqCst`
//!   accesses, and lock/unlock/condvar edges drain the buffer, as on x86.
//!   This refutes invalid `SeqCst` → `Release`/`Acquire` downgrades of
//!   Dekker-style store/load handshakes; reorderings beyond TSO (store/store,
//!   load/load, as on ARM) are *not* modeled, so a downgrade below
//!   acquire/release must be justified by a happens-before argument (e.g. a
//!   protecting mutex), never by this mode alone.
//!
//! A failing schedule (assertion panic inside the harness, deadlock, or step
//! budget exhaustion) stops the search and is reported as a [`Failure`]:
//! a human-readable step list plus the exact decision vector, replayable with
//! [`Model::replay`].
//!
//! The engine contains no `unsafe`: model threads are ordinary OS threads
//! that hand a baton back and forth with the scheduler through mutexes and
//! condvars, and at most one of them is ever runnable at a time.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Identifier of a model thread within one execution (spawn order).
pub type ThreadId = usize;

/// Identifier of a shared location within one execution (registration order;
/// deterministic because replayed prefixes perform identical registrations).
pub(crate) type Loc = usize;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What kind of shared object a location is (for trace printing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LocKind {
    Atomic,
    Mutex,
    Condvar,
}

impl LocKind {
    fn prefix(self) -> &'static str {
        match self {
            LocKind::Atomic => "a",
            LocKind::Mutex => "m",
            LocKind::Condvar => "cv",
        }
    }
}

/// The read-modify-write flavours the shim atomics need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Rmw {
    Add(usize),
    Sub(usize),
    Swap(usize),
    Cas { expected: usize, new: usize },
}

/// A declared (not yet executed) operation of a model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    Load(Loc, std::sync::atomic::Ordering),
    Store(Loc, usize, std::sync::atomic::Ordering),
    Rmw(Loc, Rmw, std::sync::atomic::Ordering),
    MutexLock(Loc),
    MutexUnlock(Loc),
    CvWait {
        cv: Loc,
        mutex: Loc,
        timed: bool,
    },
    CvNotify {
        cv: Loc,
        all: bool,
    },
    Yield,
    /// The thread wants to create a new model thread itself (it owns the
    /// closure); granting this runs the thread rather than applying state.
    Spawn,
    Join(ThreadId),
}

/// Access signature of a transition, for conflict detection between sleeping
/// transitions and executed steps.  At most two locations are involved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct Sig {
    locs: [Option<(Loc, bool)>; 2], // (location, is_write-like)
}

impl Sig {
    fn empty() -> Sig {
        Sig::default()
    }
    fn one(loc: Loc, write: bool) -> Sig {
        Sig {
            locs: [Some((loc, write)), None],
        }
    }
    fn two(a: (Loc, bool), b: (Loc, bool)) -> Sig {
        Sig {
            locs: [Some(a), Some(b)],
        }
    }
    fn conflicts(&self, other: &Sig) -> bool {
        for &a in self.locs.iter().flatten() {
            for &b in other.locs.iter().flatten() {
                if a.0 == b.0 && (a.1 || b.1) {
                    return true;
                }
            }
        }
        false
    }
}

fn op_sig(op: &Op) -> Sig {
    match *op {
        Op::Load(l, _) => Sig::one(l, false),
        Op::Store(l, _, _) | Op::Rmw(l, _, _) => Sig::one(l, true),
        Op::MutexLock(l) | Op::MutexUnlock(l) => Sig::one(l, true),
        Op::CvWait { cv, mutex, .. } => Sig::two((cv, true), (mutex, true)),
        Op::CvNotify { cv, .. } => Sig::one(cv, true),
        Op::Yield | Op::Spawn | Op::Join(_) => Sig::empty(),
    }
}

/// One schedulable choice at a decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Opt {
    /// Run `tid`'s pending transition (start it, apply its declared op, or
    /// complete its post-condvar mutex reacquisition).
    Step(ThreadId),
    /// Wake `tid` from a timed condvar wait by timeout.
    Timeout(ThreadId),
    /// Drain the oldest entry of `tid`'s TSO store buffer into memory.
    Flush(ThreadId),
}

impl Opt {
    fn tid(self) -> ThreadId {
        match self {
            Opt::Step(t) | Opt::Timeout(t) | Opt::Flush(t) => t,
        }
    }
}

/// Thread status from the scheduler's point of view.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Spawned but has not run to its first scheduling point yet.
    NotStarted,
    /// Parked at a scheduling point with a declared operation.
    Ready(Op),
    /// Parked inside a condvar wait, waiting for notify (or timeout).
    BlockedCv {
        cv: Loc,
        mutex: Loc,
        timed: bool,
    },
    /// Notified (or timed out): must reacquire `mutex` before resuming.
    ///
    /// `timed_out` records how the wait ended, handed back to the thread.
    BlockedMutex {
        mutex: Loc,
        timed_out: bool,
    },
    Finished,
}

/// Baton message granted to a parked thread.
enum Grant {
    /// The declared op was applied by the scheduler; `a`/`b` carry results
    /// (loaded/previous value; CAS success or condvar timed_out flag).
    Apply { a: usize, b: bool },
    /// Run user code (thread start, or a Spawn the thread performs itself).
    Run,
    /// The execution is being torn down; unwind quietly.
    Abort,
}

/// Message a model thread hands back to the scheduler.
enum FromThread {
    Declared,
    Exited(ThreadId),
    Panicked(ThreadId, String),
}

struct ThreadSlot {
    gate: Mutex<Option<Grant>>,
    cv: Condvar,
}

impl ThreadSlot {
    fn grant(&self, g: Grant) {
        *lock(&self.gate) = Some(g);
        self.cv.notify_all();
    }
    fn await_grant(&self) -> Grant {
        let mut g = lock(&self.gate);
        loop {
            if let Some(grant) = g.take() {
                return grant;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct ThreadEntry {
    slot: Arc<ThreadSlot>,
    status: Status,
    /// Timeout wake-ups consumed (bounds spurious-wake exploration).
    timeouts_used: u32,
    /// Fairness debt (bitmask of thread ids): set to "every other live
    /// thread" when this thread executes a `yield_now`; each thread that
    /// executes any op is cleared from every mask.  While the mask still
    /// contains a thread that has an enabled step, this thread is not
    /// scheduled — the fairness half of CHESS: a spin loop that yields
    /// (relying on OS fairness for liveness) cannot be starvation-livelocked
    /// by the demonic scheduler, because everyone runnable at the yield gets
    /// a turn before the yielder spins again.  Blocked/finished threads in
    /// the mask are ignored, so fairness never manufactures a deadlock.
    yield_waits: u64,
    name: String,
}

struct MutexState {
    owner: Option<ThreadId>,
}

struct CvState {
    waiters: VecDeque<ThreadId>,
}

/// Mutable shared state of one execution.
pub(crate) struct ExecState {
    threads: Vec<ThreadEntry>,
    locs_by_addr: HashMap<usize, Loc>,
    loc_kinds: Vec<LocKind>,
    mem: HashMap<Loc, usize>,
    mutexes: HashMap<Loc, MutexState>,
    cvs: HashMap<Loc, CvState>,
    /// Per-thread TSO store buffers (oldest first); empty unless `tso`.
    buffers: HashMap<ThreadId, VecDeque<(Loc, usize)>>,
    /// Human-readable step list of the current execution.
    log: Vec<String>,
    live_os_threads: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn new() -> ExecState {
        ExecState {
            threads: Vec::new(),
            locs_by_addr: HashMap::new(),
            loc_kinds: Vec::new(),
            mem: HashMap::new(),
            mutexes: HashMap::new(),
            cvs: HashMap::new(),
            buffers: HashMap::new(),
            log: Vec::new(),
            live_os_threads: Vec::new(),
        }
    }

    fn register_loc(&mut self, addr: usize, kind: LocKind, init: usize) -> Loc {
        if let Some(&l) = self.locs_by_addr.get(&addr) {
            return l;
        }
        let l = self.loc_kinds.len();
        self.locs_by_addr.insert(addr, l);
        self.loc_kinds.push(kind);
        match kind {
            LocKind::Atomic => {
                self.mem.insert(l, init);
            }
            LocKind::Mutex => {
                self.mutexes.insert(l, MutexState { owner: None });
            }
            LocKind::Condvar => {
                self.cvs.insert(
                    l,
                    CvState {
                        waiters: VecDeque::new(),
                    },
                );
            }
        }
        l
    }

    fn loc_name(&self, l: Loc) -> String {
        format!("{}{}", self.loc_kinds[l].prefix(), l)
    }

    fn flush_all(&mut self, tid: ThreadId, why: &str) {
        if let Some(buf) = self.buffers.get_mut(&tid) {
            let drained: Vec<(Loc, usize)> = buf.drain(..).collect();
            for (l, v) in drained {
                self.mem.insert(l, v);
                let name = self.loc_name(l);
                self.log
                    .push(format!("t{tid}: [buffer drain on {why}] {name} := {v}"));
            }
        }
    }

    fn read(&self, tid: ThreadId, l: Loc) -> usize {
        // Store→load forwarding from the thread's own buffer, newest first.
        if let Some(buf) = self.buffers.get(&tid) {
            if let Some(&(_, v)) = buf.iter().rev().find(|&&(bl, _)| bl == l) {
                return v;
            }
        }
        *self.mem.get(&l).expect("atomic location registered")
    }
}

/// Messages-to-scheduler queue.
struct SchedQueue {
    q: Mutex<VecDeque<FromThread>>,
    cv: Condvar,
}

impl SchedQueue {
    fn push(&self, m: FromThread) {
        lock(&self.q).push_back(m);
        self.cv.notify_all();
    }
    fn pop(&self) -> FromThread {
        let mut q = lock(&self.q);
        loop {
            if let Some(m) = q.pop_front() {
                return m;
            }
            q = self.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Shared context of one execution; shim operations reach it through TLS.
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    sched: SchedQueue,
    abort: AtomicBool,
}

/// Thread-local handle to the active execution (None outside model runs).
#[derive(Clone)]
pub(crate) struct Handle {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: ThreadId,
}

thread_local! {
    static MODEL_ACTIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static CURRENT: std::cell::RefCell<Option<Handle>> = const { std::cell::RefCell::new(None) };
}

/// Whether the calling thread is currently executing under the model
/// scheduler.  Production code may consult this to shrink bounded spin loops
/// (every re-load of an atomic is a scheduler step, so a 128-iteration spin
/// multiplies the state space for no modelling value).
#[inline(always)]
pub fn model_active() -> bool {
    MODEL_ACTIVE.with(|c| c.get())
}

pub(crate) fn current_handle() -> Option<Handle> {
    if !model_active() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

struct TlsGuard;

impl Drop for TlsGuard {
    fn drop(&mut self) {
        MODEL_ACTIVE.with(|c| c.set(false));
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

fn set_tls(h: Handle) -> TlsGuard {
    MODEL_ACTIVE.with(|c| c.set(true));
    CURRENT.with(|c| *c.borrow_mut() = Some(h));
    TlsGuard
}

/// Panic payload used to unwind model threads during teardown.
struct AbortUnwind;

impl Exec {
    /// Registers (or finds) a shared location.  Called from shim ops.
    pub(crate) fn loc(&self, addr: usize, kind: LocKind, init: usize) -> Loc {
        lock(&self.state).register_loc(addr, kind, init)
    }

    fn check_abort(&self) {
        if self.abort.load(StdOrdering::SeqCst) {
            std::panic::panic_any(AbortUnwind);
        }
    }

    /// Declares `op` for `tid`, parks until the scheduler applies it, and
    /// returns the `(a, b)` result pair of the grant.
    pub(crate) fn declare(&self, h: &Handle, op: Op) -> (usize, bool) {
        self.check_abort();
        let slot = {
            let mut st = lock(&self.state);
            st.threads[h.tid].status = Status::Ready(op);
            Arc::clone(&st.threads[h.tid].slot)
        };
        self.sched.push(FromThread::Declared);
        match slot.await_grant() {
            Grant::Apply { a, b } => (a, b),
            Grant::Run => (0, false),
            Grant::Abort => std::panic::panic_any(AbortUnwind),
        }
    }

    /// Spawns a model thread running `f`; the new thread parks before any
    /// user code until the scheduler starts it.
    pub(crate) fn spawn_thread<F>(self: &Arc<Self>, name: String, f: F) -> ThreadId
    where
        F: FnOnce() + Send + 'static,
    {
        let slot = Arc::new(ThreadSlot {
            gate: Mutex::new(None),
            cv: Condvar::new(),
        });
        let tid = {
            let mut st = lock(&self.state);
            let tid = st.threads.len();
            st.threads.push(ThreadEntry {
                slot: Arc::clone(&slot),
                status: Status::NotStarted,
                timeouts_used: 0,
                yield_waits: 0,
                name: name.clone(),
            });
            st.buffers.insert(tid, VecDeque::new());
            tid
        };
        let exec = Arc::clone(self);
        let os = std::thread::Builder::new()
            .name(format!("wsm-check-{name}"))
            .spawn(move || {
                let _tls = set_tls(Handle {
                    exec: Arc::clone(&exec),
                    tid,
                });
                match slot.await_grant() {
                    Grant::Run => {}
                    Grant::Abort => return,
                    Grant::Apply { .. } => unreachable!("start grant is Run"),
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                match result {
                    Ok(()) => exec.sched.push(FromThread::Exited(tid)),
                    Err(payload) => {
                        if payload.downcast_ref::<AbortUnwind>().is_some() {
                            // Teardown unwind; the scheduler is not listening.
                        } else {
                            let msg = panic_message(payload);
                            exec.sched.push(FromThread::Panicked(tid, msg));
                        }
                    }
                }
            })
            .expect("spawn model thread");
        lock(&self.state).live_os_threads.push(os);
        tid
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// One decision point in the DFS stack.
struct Node {
    options: Vec<Opt>,
    /// Index (into `options`) of the branch the current execution takes.
    taken: usize,
    /// Signature observed when the taken branch executed (moved into
    /// `explored` on backtrack).
    taken_sig: Option<Sig>,
    /// Branches already fully explored at this node, with their signatures.
    explored: Vec<(Opt, Sig)>,
    /// Sleep set inherited on arrival at this node.
    sleep_in: Vec<(Opt, Sig)>,
    /// Remaining preemption budget on arrival.
    budget: u32,
    /// Thread that performed the previous Step/start (preemption accounting).
    prev: Option<ThreadId>,
}

/// Why an execution attempt ended.
enum ExecOutcome {
    /// All threads finished; the schedule count advances.
    Complete,
    /// Every remaining candidate at some node was asleep (schedule is
    /// equivalent to an explored one).
    Pruned,
    /// A failure was observed; search stops.
    Failed(Failure),
}

/// A failing schedule: what went wrong, the executed step list, and the
/// decision vector that reproduces it via [`Model::replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    /// Failure class + message (assertion text, deadlock description, ...).
    pub message: String,
    /// Human-readable executed steps, in order.
    pub trace: Vec<String>,
    /// Option index taken at each decision point (replay vector).
    pub choices: Vec<usize>,
}

impl Failure {
    /// Renders the failure as a replayable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("model failure: {}\n", self.message));
        out.push_str("failing schedule (step list):\n");
        for (i, s) in self.trace.iter().enumerate() {
            out.push_str(&format!("  #{i:<3} {s}\n"));
        }
        let choices: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        out.push_str(&format!("replay vector: [{}]\n", choices.join(",")));
        out
    }
}

/// Result of a [`Model::check`] search.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Distinct complete schedules executed.
    pub schedules: u64,
    /// Branches cut by sleep-set pruning (equivalent to explored schedules).
    pub pruned: u64,
    /// Decision points at which the preemption bound excluded options.
    pub bound_hits: u64,
    /// True if the search stopped at `max_schedules` before exhausting the
    /// bounded space.
    pub capped: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
    /// Schedules per preemption bound for iterative runs
    /// ([`Model::check_iter`]); empty for single-bound runs.
    pub per_bound: Vec<(u32, u64)>,
}

impl Report {
    /// Total distinct schedules considered: executed plus those cut by
    /// sleep-set pruning.  A pruned branch is a real schedule whose
    /// exploration was proven redundant (its first transition commutes with
    /// everything the sibling branches already covered), so coverage
    /// criteria count it.
    pub fn considered(&self) -> u64 {
        self.schedules + self.pruned
    }

    /// Asserts the search passed (no failure, not capped) and explored at
    /// least `min_schedules` distinct schedules; returns self for chaining.
    pub fn assert_pass(self, min_schedules: u64) -> Report {
        if let Some(f) = &self.failure {
            panic!("{}", f.render());
        }
        assert!(
            !self.capped,
            "search hit the schedule cap before exhausting the bounded space \
             ({} schedules)",
            self.schedules
        );
        assert!(
            self.schedules >= min_schedules,
            "expected >= {min_schedules} distinct schedules, explored {}",
            self.schedules
        );
        self
    }

    /// Asserts the search found a failure and returns it.
    pub fn assert_fails(self) -> Failure {
        match self.failure {
            Some(f) => f,
            None => panic!(
                "expected a failing schedule, but {} schedules passed",
                self.schedules
            ),
        }
    }
}

/// Model-checker configuration.  See the module docs for semantics.
#[derive(Clone, Debug)]
pub struct Model {
    /// Maximum preemptions per schedule (`None` = unbounded).
    pub preemption_bound: Option<u32>,
    /// Enable the TSO store-buffer mode.
    pub tso: bool,
    /// Enable sleep-set pruning.
    pub sleep_sets: bool,
    /// Per-thread cap on spurious/timeout wake-ups of timed waits (bounds
    /// otherwise-infinite timeout loops).
    pub max_timeouts: u32,
    /// Per-execution scheduling-step budget; exceeding it is a failure
    /// (livelock suspect).
    pub max_steps: usize,
    /// Optional cap on explored schedules (the report notes if it was hit).
    pub max_schedules: Option<u64>,
    /// Per-thread TSO store-buffer capacity (oldest entry auto-drains when
    /// full, like a finite hardware write buffer).
    pub store_buffer_cap: usize,
}

impl Default for Model {
    fn default() -> Self {
        Model::with_bound(2)
    }
}

impl Model {
    /// Sequentially consistent exploration with the given preemption bound.
    pub fn with_bound(bound: u32) -> Model {
        Model {
            preemption_bound: Some(bound),
            tso: false,
            sleep_sets: true,
            max_timeouts: 1,
            max_steps: 20_000,
            max_schedules: Some(2_000_000),
            store_buffer_cap: 2,
        }
    }

    /// TSO store-buffer exploration with the given preemption bound.
    pub fn tso_with_bound(bound: u32) -> Model {
        Model {
            tso: true,
            ..Model::with_bound(bound)
        }
    }

    /// Unbounded (complete) sequentially consistent exploration.
    pub fn unbounded() -> Model {
        Model {
            preemption_bound: None,
            ..Model::with_bound(0)
        }
    }

    /// Explores every schedule of `harness` within the configured bounds.
    ///
    /// The harness runs once per schedule and must be deterministic apart
    /// from scheduling (no wall-clock, no RNG, no ambient threads).
    pub fn check<F>(&self, harness: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.search(Arc::new(harness), None)
    }

    /// Iterative context bounding: explores bounds `0..=max_bound` in order,
    /// stopping at the first failing bound (CHESS's search strategy — bugs
    /// reachable with few preemptions are found before the space explodes).
    pub fn check_iter<F>(&self, max_bound: u32, harness: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let harness: Arc<dyn Fn() + Send + Sync> = Arc::new(harness);
        let mut total = Report::default();
        for bound in 0..=max_bound {
            let mut cfg = self.clone();
            cfg.preemption_bound = Some(bound);
            let r = cfg.search(Arc::clone(&harness), None);
            total.per_bound.push((bound, r.schedules));
            total.schedules += r.schedules;
            total.pruned += r.pruned;
            total.capped |= r.capped;
            total.bound_hits += r.bound_hits;
            if r.failure.is_some() {
                total.failure = r.failure;
                return total;
            }
        }
        total
    }

    /// Re-executes exactly one schedule (a [`Failure::choices`] vector),
    /// returning the failure it reproduces (if it still fails).
    pub fn replay<F>(&self, choices: &[usize], harness: F) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.search(Arc::new(harness), Some(choices.to_vec()))
            .failure
    }

    fn search(&self, harness: Arc<dyn Fn() + Send + Sync>, replay: Option<Vec<usize>>) -> Report {
        silence_model_thread_panics();
        let mut report = Report::default();
        let mut stack: Vec<Node> = Vec::new();
        let replaying = replay.is_some();
        loop {
            let outcome = self.run_once(&harness, &mut stack, &mut report, replay.as_deref());
            match outcome {
                ExecOutcome::Complete => report.schedules += 1,
                ExecOutcome::Pruned => report.pruned += 1,
                ExecOutcome::Failed(f) => {
                    report.failure = Some(f);
                    return report;
                }
            }
            if replaying {
                return report;
            }
            if let Some(cap) = self.max_schedules {
                if report.schedules >= cap {
                    // Capped iff unexplored branches remained.
                    report.capped = backtrack(&mut stack);
                    return report;
                }
            }
            // Backtrack: advance the deepest node with an unexplored,
            // non-sleeping, in-budget branch; pop exhausted nodes.
            if !backtrack(&mut stack) {
                return report;
            }
        }
    }

    /// Runs one execution, replaying `stack[..]`'s taken choices and
    /// extending the stack at fresh decision points.
    fn run_once(
        &self,
        harness: &Arc<dyn Fn() + Send + Sync>,
        stack: &mut Vec<Node>,
        report: &mut Report,
        replay: Option<&[usize]>,
    ) -> ExecOutcome {
        let exec = Arc::new(Exec {
            state: Mutex::new(ExecState::new()),
            sched: SchedQueue {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            },
            abort: AtomicBool::new(false),
        });
        let h = Arc::clone(harness);
        let root = exec.spawn_thread("root".to_string(), move || h());
        debug_assert_eq!(root, 0);

        let mut depth = 0usize;
        let mut prev: Option<ThreadId> = None;
        let mut budget = self.preemption_bound.unwrap_or(u32::MAX);
        let mut sleep: Vec<(Opt, Sig)> = Vec::new();
        let mut steps = 0usize;

        let outcome = loop {
            // Compute the enabled options in canonical order.
            let (options, unfinished) = self.enabled_options(&exec, prev);
            if options.is_empty() {
                if unfinished.is_empty() {
                    break ExecOutcome::Complete;
                }
                let st = lock(&exec.state);
                // Timed waiters whose timeout budget is exhausted are not a
                // deadlock: the real system would keep waking on its timeout
                // backstop.  If *every* unfinished thread is such a waiter,
                // the schedule is complete (liveness-via-timeout).
                let all_timed_out = unfinished.iter().all(|&t| {
                    matches!(st.threads[t].status, Status::BlockedCv { timed: true, .. })
                });
                if all_timed_out {
                    drop(st);
                    break ExecOutcome::Complete;
                }
                let who: Vec<String> = unfinished
                    .iter()
                    .map(|&t| format!("t{t}({}) {:?}", st.threads[t].name, st.threads[t].status))
                    .collect();
                let trace = st.log.clone();
                drop(st);
                break ExecOutcome::Failed(Failure {
                    message: format!("deadlock: no runnable thread; blocked: {}", who.join(", ")),
                    trace,
                    choices: taken_vector(stack, depth),
                });
            }
            steps += 1;
            if steps > self.max_steps {
                let st = lock(&exec.state);
                let trace = st.log.clone();
                drop(st);
                break ExecOutcome::Failed(Failure {
                    message: format!(
                        "step budget exhausted ({} scheduling points): livelock suspect",
                        self.max_steps
                    ),
                    trace,
                    choices: taken_vector(stack, depth),
                });
            }

            // Pick the branch: replay vector, existing stack, or a new node.
            let chosen_idx = if let Some(vec) = replay {
                if depth >= vec.len() {
                    // Replay vector exhausted: run the remaining schedule
                    // round-robin-deterministically (first option).
                    0
                } else {
                    vec[depth].min(options.len().saturating_sub(1))
                }
            } else if depth < stack.len() {
                let node = &stack[depth];
                debug_assert_eq!(
                    node.options, options,
                    "nondeterministic harness: decision point {depth} changed between replays"
                );
                node.taken
            } else {
                // Fresh node: first candidate that is not asleep and whose
                // preemption cost fits the budget.
                let mut node = Node {
                    options: options.clone(),
                    taken: usize::MAX,
                    taken_sig: None,
                    explored: Vec::new(),
                    sleep_in: sleep.clone(),
                    budget,
                    prev,
                };
                match first_candidate(&node, self, report) {
                    Some(idx) => node.taken = idx,
                    None => {
                        // Every option is asleep (equivalent schedule already
                        // explored) or over the preemption budget.
                        stack.push(node);
                        self.teardown(&exec);
                        return ExecOutcome::Pruned;
                    }
                }
                stack.push(node);
                stack[depth].taken
            };

            let opt = options[chosen_idx];
            let cost = preemption_cost(opt, prev, &options);
            if budget < cost {
                // Only reachable through a stale replay vector.
                budget = 0;
            } else {
                budget -= cost;
            }

            // Apply the transition.
            let sig = self.apply(&exec, opt);

            // Update the running sleep set: wake sleepers whose pending
            // transition conflicts with what just executed; drop entries for
            // the thread that moved.
            if self.sleep_sets {
                sleep.retain(|(p, psig)| p.tid() != opt.tid() && !psig.conflicts(&sig));
                if depth < stack.len() {
                    let node = &stack[depth];
                    // Branches explored earlier at this node go to sleep in
                    // the current branch.
                    for (p, psig) in &node.explored {
                        if p.tid() != opt.tid() && !psig.conflicts(&sig) {
                            sleep.push((*p, *psig));
                        }
                    }
                }
            }
            if let Opt::Step(tid) = opt {
                prev = Some(tid);
            }
            if replay.is_none() && depth < stack.len() {
                // Record the signature for the taken branch (used when this
                // branch is moved into `explored` during backtracking).
                record_sig(&mut stack[depth], chosen_idx, sig);
            }
            depth += 1;

            // If the transition woke a thread, wait for it to come back.
            if opt_wakes_thread(&exec, opt) {
                match exec.sched.pop() {
                    FromThread::Declared => {}
                    FromThread::Exited(tid) => {
                        let mut st = lock(&exec.state);
                        st.flush_all(tid, "exit");
                        st.threads[tid].status = Status::Finished;
                        let name = st.threads[tid].name.clone();
                        st.log.push(format!("t{tid}({name}): exited"));
                    }
                    FromThread::Panicked(tid, msg) => {
                        let st = lock(&exec.state);
                        let name = st.threads[tid].name.clone();
                        let mut trace = st.log.clone();
                        trace.push(format!("t{tid}({name}): panicked: {msg}"));
                        drop(st);
                        break ExecOutcome::Failed(Failure {
                            message: msg,
                            trace,
                            choices: taken_vector(stack, depth),
                        });
                    }
                }
            }
        };
        self.teardown(&exec);
        outcome
    }

    /// Enabled options in canonical order (prev thread first, then by id;
    /// steps before timeouts before flushes).  Also returns unfinished
    /// thread ids for deadlock reporting.
    fn enabled_options(
        &self,
        exec: &Arc<Exec>,
        prev: Option<ThreadId>,
    ) -> (Vec<Opt>, Vec<ThreadId>) {
        let st = lock(&exec.state);
        let mut steps: Vec<Opt> = Vec::new();
        let mut timeouts: Vec<Opt> = Vec::new();
        let mut flushes: Vec<Opt> = Vec::new();
        let mut unfinished = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            match &t.status {
                Status::Finished => continue,
                other => {
                    unfinished.push(tid);
                    match other {
                        Status::NotStarted => steps.push(Opt::Step(tid)),
                        Status::Ready(op) => {
                            let enabled = match op {
                                Op::MutexLock(m) => st.mutexes[m].owner.is_none(),
                                Op::Join(target) => st
                                    .threads
                                    .get(*target)
                                    .is_none_or(|e| matches!(e.status, Status::Finished)),
                                _ => true,
                            };
                            if enabled {
                                steps.push(Opt::Step(tid));
                            }
                        }
                        Status::BlockedMutex { mutex, .. } => {
                            if st.mutexes[mutex].owner.is_none() {
                                steps.push(Opt::Step(tid));
                            }
                        }
                        Status::BlockedCv { timed, .. } => {
                            if *timed && t.timeouts_used < self.max_timeouts {
                                timeouts.push(Opt::Timeout(tid));
                            }
                        }
                        Status::Finished => unreachable!(),
                    }
                }
            }
        }
        // Yield fairness: a thread still owing turns from its last yield is
        // ineligible while any owed thread has an enabled step of its own.
        // Only steps suppress steps — timeouts and flushes never mask a
        // yielder — and if the filter would empty the step set it is skipped
        // entirely, so fairness can never manufacture a deadlock.  The masks
        // are a deterministic function of the schedule prefix, so replay and
        // the nondeterminism check are unaffected.
        let steppable: u64 = steps.iter().fold(0, |m, o| m | mask(o.tid()));
        let fair: Vec<Opt> = steps
            .iter()
            .copied()
            .filter(|o| st.threads[o.tid()].yield_waits & steppable == 0)
            .collect();
        if !fair.is_empty() {
            steps = fair;
        }
        if self.tso {
            for (&tid, buf) in st.buffers.iter() {
                if !buf.is_empty() {
                    flushes.push(Opt::Flush(tid));
                }
            }
            flushes.sort_by_key(|o| o.tid());
        }
        drop(st);
        // Canonical order: continuing the previous thread first minimises
        // preemptions on the first-explored path.
        steps.sort_by_key(|o| (Some(o.tid()) != prev, o.tid()));
        timeouts.sort_by_key(|o| o.tid());
        let mut options = steps;
        options.extend(timeouts);
        options.extend(flushes);
        (options, unfinished)
    }

    /// Applies one transition to the execution state, waking the affected
    /// thread where required, and returns the transition's signature.
    fn apply(&self, exec: &Arc<Exec>, opt: Opt) -> Sig {
        let mut st = lock(&exec.state);
        // Yield-fairness bookkeeping: executing any op pays off this
        // thread's entry in every other thread's fairness debt; executing a
        // declared `yield_now` additionally indebts the yielder to every
        // other live thread.  (The `Ready(Op::Yield)` placeholders written
        // by thread start and condvar reacquire are overwritten before they
        // ever reach the scheduler, so the yield test only sees real
        // yields.)
        let is_yield = matches!(opt, Opt::Step(t)
            if matches!(st.threads[t].status, Status::Ready(Op::Yield)));
        let u = opt.tid();
        let live: u64 = st
            .threads
            .iter()
            .enumerate()
            .filter(|(v, t)| *v != u && !matches!(t.status, Status::Finished))
            .fold(0, |m, (v, _)| m | mask(v));
        for (v, t) in st.threads.iter_mut().enumerate() {
            t.yield_waits &= !mask(u);
            if v == u {
                t.yield_waits = if is_yield { live } else { 0 };
            }
        }
        match opt {
            Opt::Flush(tid) => {
                let (l, v) = st.buffers.get_mut(&tid).unwrap().pop_front().unwrap();
                st.mem.insert(l, v);
                let name = st.loc_name(l);
                st.log.push(format!("t{tid}: [buffer drain] {name} := {v}"));
                Sig::one(l, true)
            }
            Opt::Timeout(tid) => {
                let (cv, mutex) = match st.threads[tid].status {
                    Status::BlockedCv { cv, mutex, .. } => (cv, mutex),
                    ref s => unreachable!("timeout on non-waiting thread: {s:?}"),
                };
                st.cvs.get_mut(&cv).unwrap().waiters.retain(|&w| w != tid);
                st.threads[tid].status = Status::BlockedMutex {
                    mutex,
                    timed_out: true,
                };
                st.threads[tid].timeouts_used += 1;
                let name = st.loc_name(cv);
                st.log.push(format!("t{tid}: wait on {name} timed out"));
                Sig::one(cv, true)
            }
            Opt::Step(tid) => {
                let status = st.threads[tid].status.clone();
                let name = st.threads[tid].name.clone();
                match status {
                    Status::NotStarted => {
                        st.log.push(format!("t{tid}({name}): started"));
                        let slot = Arc::clone(&st.threads[tid].slot);
                        // Not `Ready` yet: the thread will declare its first
                        // op when it reaches one.
                        st.threads[tid].status = Status::Ready(Op::Yield);
                        drop(st);
                        slot.grant(Grant::Run);
                        Sig::empty()
                    }
                    Status::BlockedMutex { mutex, timed_out } => {
                        st.mutexes.get_mut(&mutex).unwrap().owner = Some(tid);
                        st.threads[tid].status = Status::Ready(Op::Yield);
                        let mname = st.loc_name(mutex);
                        st.log
                            .push(format!("t{tid}: reacquired {mname} after wait"));
                        let slot = Arc::clone(&st.threads[tid].slot);
                        drop(st);
                        slot.grant(Grant::Apply { a: 0, b: timed_out });
                        Sig::one(mutex, true)
                    }
                    Status::Ready(op) => self.apply_ready(st, tid, op),
                    Status::BlockedCv { .. } | Status::Finished => {
                        unreachable!("scheduled a non-runnable thread")
                    }
                }
            }
        }
    }

    fn apply_ready(&self, mut st: MutexGuard<'_, ExecState>, tid: ThreadId, op: Op) -> Sig {
        use std::sync::atomic::Ordering::SeqCst;
        let sig = op_sig(&op);
        let slot = Arc::clone(&st.threads[tid].slot);
        match op {
            Op::Load(l, ord) => {
                let v = st.read(tid, l);
                let name = st.loc_name(l);
                st.log.push(format!("t{tid}: load {name} -> {v} ({ord:?})"));
                drop(st);
                slot.grant(Grant::Apply { a: v, b: false });
            }
            Op::Store(l, v, ord) => {
                let name = st.loc_name(l);
                if self.tso && ord != SeqCst {
                    let evicted = {
                        let buf = st.buffers.get_mut(&tid).unwrap();
                        buf.push_back((l, v));
                        if buf.len() > self.store_buffer_cap {
                            buf.pop_front()
                        } else {
                            None
                        }
                    };
                    if let Some((ol, ov)) = evicted {
                        // Finite hardware buffer: the oldest entry drains.
                        st.mem.insert(ol, ov);
                    }
                    st.log
                        .push(format!("t{tid}: store {name} := {v} ({ord:?}) [buffered]"));
                } else {
                    st.flush_all(tid, "SeqCst store");
                    st.mem.insert(l, v);
                    st.log
                        .push(format!("t{tid}: store {name} := {v} ({ord:?})"));
                }
                drop(st);
                slot.grant(Grant::Apply { a: 0, b: false });
            }
            Op::Rmw(l, rmw, ord) => {
                // RMWs act on the globally visible value (they drain the
                // store buffer first, as on TSO hardware).
                st.flush_all(tid, "rmw");
                let prev = *st.mem.get(&l).expect("atomic location registered");
                let (next, ok) = match rmw {
                    Rmw::Add(n) => (prev.wrapping_add(n), true),
                    Rmw::Sub(n) => (prev.wrapping_sub(n), true),
                    Rmw::Swap(v) => (v, true),
                    Rmw::Cas { expected, new } => {
                        if prev == expected {
                            (new, true)
                        } else {
                            (prev, false)
                        }
                    }
                };
                if ok {
                    st.mem.insert(l, next);
                }
                let name = st.loc_name(l);
                st.log.push(format!(
                    "t{tid}: rmw {name} {rmw:?} ({ord:?}) -> prev {prev}{}",
                    if ok { "" } else { " [cas failed]" }
                ));
                drop(st);
                slot.grant(Grant::Apply { a: prev, b: ok });
            }
            Op::MutexLock(m) => {
                st.flush_all(tid, "lock");
                let owner = &mut st.mutexes.get_mut(&m).unwrap().owner;
                debug_assert!(owner.is_none(), "granted a held mutex");
                *owner = Some(tid);
                let name = st.loc_name(m);
                st.log.push(format!("t{tid}: lock {name}"));
                drop(st);
                slot.grant(Grant::Apply { a: 0, b: false });
            }
            Op::MutexUnlock(m) => {
                st.flush_all(tid, "unlock");
                st.mutexes.get_mut(&m).unwrap().owner = None;
                let name = st.loc_name(m);
                st.log.push(format!("t{tid}: unlock {name}"));
                drop(st);
                slot.grant(Grant::Apply { a: 0, b: false });
            }
            Op::CvWait { cv, mutex, timed } => {
                // Atomic release-and-wait; the thread stays parked and is
                // NOT granted (it resumes via notify/timeout + reacquire).
                st.flush_all(tid, "wait");
                st.mutexes.get_mut(&mutex).unwrap().owner = None;
                st.cvs.get_mut(&cv).unwrap().waiters.push_back(tid);
                st.threads[tid].status = Status::BlockedCv { cv, mutex, timed };
                let cname = st.loc_name(cv);
                let mname = st.loc_name(mutex);
                st.log.push(format!(
                    "t{tid}: wait on {cname} (released {mname}{})",
                    if timed { ", timed" } else { "" }
                ));
            }
            Op::CvNotify { cv, all } => {
                st.flush_all(tid, "notify");
                let woken: Vec<ThreadId> = {
                    let waiters = &mut st.cvs.get_mut(&cv).unwrap().waiters;
                    if all {
                        waiters.drain(..).collect()
                    } else {
                        waiters.pop_front().into_iter().collect()
                    }
                };
                for w in &woken {
                    let mutex = match st.threads[*w].status {
                        Status::BlockedCv { mutex, .. } => mutex,
                        ref s => unreachable!("cv waiter in state {s:?}"),
                    };
                    st.threads[*w].status = Status::BlockedMutex {
                        mutex,
                        timed_out: false,
                    };
                }
                let name = st.loc_name(cv);
                st.log.push(format!(
                    "t{tid}: notify_{} {name} (woke {:?})",
                    if all { "all" } else { "one" },
                    woken
                ));
                drop(st);
                slot.grant(Grant::Apply { a: 0, b: false });
            }
            Op::Yield => {
                st.log.push(format!("t{tid}: yield"));
                drop(st);
                slot.grant(Grant::Apply { a: 0, b: false });
            }
            Op::Spawn => {
                st.log.push(format!("t{tid}: spawn"));
                drop(st);
                // The thread owns the closure; let it create the new thread.
                slot.grant(Grant::Run);
            }
            Op::Join(target) => {
                st.log.push(format!("t{tid}: join t{target}"));
                drop(st);
                slot.grant(Grant::Apply { a: 0, b: false });
            }
        }
        sig
    }

    /// Tears an execution down: aborts every live model thread and joins the
    /// OS threads so executions never overlap.
    fn teardown(&self, exec: &Arc<Exec>) {
        exec.abort.store(true, StdOrdering::SeqCst);
        let (slots, handles) = {
            let mut st = lock(&exec.state);
            let slots: Vec<Arc<ThreadSlot>> = st
                .threads
                .iter()
                .filter(|t| !matches!(t.status, Status::Finished))
                .map(|t| Arc::clone(&t.slot))
                .collect();
            let handles: Vec<std::thread::JoinHandle<()>> = st.live_os_threads.drain(..).collect();
            (slots, handles)
        };
        for s in &slots {
            s.grant(Grant::Abort);
        }
        for h in handles {
            let _ = h.join();
        }
        // Drain any straggler messages (exited threads racing the abort).
        loop {
            let mut q = lock(&exec.sched.q);
            if q.pop_front().is_none() {
                break;
            }
        }
    }
}

/// Installs (once) a panic hook that suppresses the default backtrace spew
/// for model threads: their panics are either captured and reported as a
/// [`Failure`] with a step trace, or deliberate teardown unwinds.
fn silence_model_thread_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_model_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("wsm-check-"));
            if !on_model_thread {
                prev(info);
            }
        }));
    });
}

/// Bit for `tid` in a fairness mask.  Threads beyond 64 are exempt from
/// fairness bookkeeping (model harnesses use a handful of threads).
fn mask(tid: ThreadId) -> u64 {
    if tid < 64 {
        1 << tid
    } else {
        0
    }
}

fn opt_wakes_thread(exec: &Arc<Exec>, opt: Opt) -> bool {
    match opt {
        Opt::Flush(_) | Opt::Timeout(_) => false,
        Opt::Step(tid) => {
            // CvWait leaves the thread parked; everything else woke it.
            let st = lock(&exec.state);
            !matches!(st.threads[tid].status, Status::BlockedCv { .. })
        }
    }
}

fn record_sig(node: &mut Node, taken_idx: usize, sig: Sig) {
    debug_assert_eq!(node.taken, taken_idx);
    // The signature is attached when the branch is retired into `explored`
    // during backtracking; stash it in a parallel slot until then.
    node.taken_sig = Some(sig);
}

fn taken_vector(stack: &[Node], depth: usize) -> Vec<usize> {
    stack.iter().take(depth).map(|n| n.taken).collect()
}

/// Preemption cost of choosing `opt` when `prev` ran the previous step:
/// 1 if this switches away from a thread that could have continued.
fn preemption_cost(opt: Opt, prev: Option<ThreadId>, options: &[Opt]) -> u32 {
    let prev = match prev {
        Some(p) => p,
        None => return 0,
    };
    if opt.tid() == prev && matches!(opt, Opt::Step(_)) {
        return 0;
    }
    if matches!(opt, Opt::Flush(_)) {
        return 0; // hardware buffer drain, not a thread switch
    }
    let prev_enabled = options
        .iter()
        .any(|o| matches!(o, Opt::Step(t) if *t == prev));
    u32::from(prev_enabled)
}

/// First branch at a fresh node that is not asleep and fits the budget.
fn first_candidate(node: &Node, model: &Model, report: &mut Report) -> Option<usize> {
    candidate_from(node, 0, model, report)
}

/// First eligible branch at `node` starting from option index `from`.
fn candidate_from(node: &Node, from: usize, model: &Model, report: &mut Report) -> Option<usize> {
    let mut bound_skipped = false;
    for (idx, opt) in node.options.iter().enumerate().skip(from) {
        if node.explored.iter().any(|(p, _)| p == opt) {
            continue;
        }
        if model.sleep_sets && node.sleep_in.iter().any(|(p, _)| p == opt) {
            continue;
        }
        if preemption_cost(*opt, node.prev, &node.options) > node.budget {
            bound_skipped = true;
            continue;
        }
        if bound_skipped {
            report.bound_hits += 1;
        }
        return Some(idx);
    }
    if bound_skipped {
        report.bound_hits += 1;
    }
    None
}

/// Retires the taken branch of the deepest node and advances to the next
/// eligible branch; pops nodes with none left.  Returns false when the whole
/// space is exhausted.
fn backtrack(stack: &mut Vec<Node>) -> bool {
    // A throwaway report absorbs bound-hit counts during candidate scans
    // (they were already counted when the node was first expanded).
    let mut scratch = Report::default();
    while let Some(node) = stack.last_mut() {
        if node.taken != usize::MAX {
            let opt = node.options[node.taken];
            let sig = node.taken_sig.take().unwrap_or_else(Sig::empty);
            node.explored.push((opt, sig));
        }
        // Model settings live outside; sleep/bound eligibility was encoded in
        // the node itself, so re-scan with a permissive model and re-check
        // sleep/budget via the stored fields.
        let model = Model {
            preemption_bound: Some(node.budget),
            sleep_sets: true,
            ..Model::with_bound(node.budget)
        };
        match candidate_from(node, 0, &model, &mut scratch) {
            Some(idx) => {
                node.taken = idx;
                return true;
            }
            None => {
                stack.pop();
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{AtomicUsize, Ordering};
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;

    /// Every SC outcome of the store/load cross (Dekker kernel) and nothing
    /// else: (0,0) is impossible under sequential consistency.
    fn dekker_outcomes(model: Model) -> BTreeSet<(usize, usize)> {
        let outcomes = Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        let r = model.check(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let t = {
                let (x, y) = (Arc::clone(&x), Arc::clone(&y));
                crate::thread::spawn(move || {
                    y.store(1, Ordering::SeqCst);
                    x.load(Ordering::SeqCst)
                })
            };
            x.store(1, Ordering::SeqCst);
            let saw_y = y.load(Ordering::SeqCst);
            let saw_x = t.join().unwrap();
            sink.lock().unwrap().insert((saw_x, saw_y));
        });
        assert!(r.failure.is_none(), "{}", r.failure.unwrap().render());
        assert!(!r.capped);
        Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap()
    }

    #[test]
    fn sc_dekker_covers_exactly_the_sc_outcomes() {
        let expect: BTreeSet<(usize, usize)> = [(1, 0), (0, 1), (1, 1)].into_iter().collect();
        // Bound 2 with sleep sets must already cover all SC outcomes...
        assert_eq!(dekker_outcomes(Model::with_bound(2)), expect);
        // ...and agree with the unbounded, unpruned exploration.
        let mut full = Model::unbounded();
        full.sleep_sets = false;
        assert_eq!(dekker_outcomes(full), expect);
    }

    #[test]
    fn tso_dekker_adds_the_relaxed_outcome() {
        let outcomes = Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        let r = Model::tso_with_bound(2).check(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let t = {
                let (x, y) = (Arc::clone(&x), Arc::clone(&y));
                crate::thread::spawn(move || {
                    y.store(1, Ordering::Release);
                    x.load(Ordering::Acquire)
                })
            };
            x.store(1, Ordering::Release);
            let saw_y = y.load(Ordering::Acquire);
            let saw_x = t.join().unwrap();
            sink.lock().unwrap().insert((saw_x, saw_y));
        });
        assert!(r.failure.is_none());
        let outcomes = Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap();
        assert!(
            outcomes.contains(&(0, 0)),
            "TSO must expose the store-buffer outcome (0,0); saw {outcomes:?}"
        );
    }

    #[test]
    fn sleep_sets_preserve_outcome_coverage_on_counter() {
        // Three increments across two threads: final count must always be 3,
        // and pruning must not hide any interleaving that violates it.
        let run = |sleep_sets: bool| {
            let mut m = Model::with_bound(3);
            m.sleep_sets = sleep_sets;
            m.check(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let t = {
                    let c = Arc::clone(&c);
                    crate::thread::spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                };
                c.fetch_add(1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(c.load(Ordering::SeqCst), 3);
            })
        };
        let pruned = run(true);
        let full = run(false);
        assert!(pruned.failure.is_none());
        assert!(full.failure.is_none());
        assert!(pruned.schedules <= full.schedules);
        assert!(pruned.schedules >= 1);
    }

    #[test]
    fn failing_schedule_replays_to_the_same_failure() {
        let model = Model::with_bound(2);
        let f = model
            .check(crate::fixtures::racy_claim_harness)
            .assert_fails();
        assert!(!f.trace.is_empty());
        let replayed = model
            .replay(&f.choices, crate::fixtures::racy_claim_harness)
            .expect("replay vector must reproduce the failure");
        assert_eq!(replayed.message, f.message);
    }

    #[test]
    fn deadlock_replays_deterministically() {
        let model = Model::with_bound(2);
        let f = model
            .check(crate::fixtures::buggy_doorbell_harness)
            .assert_fails();
        assert!(f.message.contains("deadlock"), "got: {}", f.message);
        let replayed = model
            .replay(&f.choices, crate::fixtures::buggy_doorbell_harness)
            .expect("deadlock must replay");
        assert!(replayed.message.contains("deadlock"));
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        use crate::sync::Mutex;
        let r = Model::with_bound(2).check(|| {
            let m = Arc::new(Mutex::new(0u32));
            let t = {
                let m = Arc::clone(&m);
                crate::thread::spawn(move || {
                    let mut g = m.lock();
                    let read = *g;
                    *g = read + 1;
                })
            };
            {
                let mut g = m.lock();
                let read = *g;
                *g = read + 1;
            }
            t.join().unwrap();
            assert_eq!(*m.lock(), 2);
        });
        r.assert_pass(2);
    }

    #[test]
    fn condvar_notify_before_wait_under_lock_is_never_lost() {
        use crate::sync::{Condvar, Mutex};
        // The CORRECT doorbell pattern: bump + notify happen under the gate.
        let r = Model::with_bound(3).check(|| {
            let gate = Arc::new(Mutex::new(0u32));
            let cv = Arc::new(Condvar::new());
            let t = {
                let (gate, cv) = (Arc::clone(&gate), Arc::clone(&cv));
                crate::thread::spawn(move || {
                    let mut g = gate.lock();
                    *g += 1;
                    drop(g);
                    cv.notify_all();
                })
            };
            let mut g = gate.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            drop(g);
            t.join().unwrap();
        });
        r.assert_pass(2);
    }

    #[test]
    fn iterative_bounding_reports_per_bound_counts() {
        let r = Model::with_bound(0).check_iter(2, || {
            let c = Arc::new(AtomicUsize::new(0));
            let t = {
                let c = Arc::clone(&c);
                crate::thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            };
            c.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        });
        assert!(r.failure.is_none());
        assert_eq!(r.per_bound.len(), 3);
        assert!(r.per_bound.iter().all(|&(_, n)| n >= 1));
    }

    #[test]
    fn timed_wait_times_out_as_a_scheduler_choice() {
        use crate::sync::{Condvar, Mutex};
        // No notifier exists: only the timeout transition can finish the
        // wait, and the exhausted-timeout tail counts as completion.
        let r = Model::with_bound(2).check(|| {
            let gate = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let mut g = gate.lock();
            let res = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
            assert!(res.timed_out());
        });
        r.assert_pass(1);
    }
}
