//! `wsm-lint`: token-level structural analyzer enforcing repo law.
//!
//! Rules (each with a fixture in `tests/lint_fixtures/` that must trip it):
//!
//! * **R1 `unsafe-outside-pool`** — the `unsafe` keyword may appear only
//!   under `crates/pool/` (the one crate allowed to hold it).
//! * **R2 `missing-forbid-header`** — every other `crates/*/src/lib.rs`
//!   must open with `#![forbid(unsafe_code)]`.
//! * **R3 `unjustified-ordering`** — every `Ordering::Relaxed` / `Acquire` /
//!   `Release` / `AcqRel` site in the concurrent crates (`sync`, `pool`,
//!   `core`) outside test code must carry a `// ord:` justification comment
//!   on the site's statement or in the comment block immediately above it.
//!   `SeqCst` needs no comment: it is the safe default the audit downgrades
//!   *from*.
//! * **R4 `sleep-as-sync`** — `thread::sleep` in `crates/` is forbidden
//!   unless annotated `// lint: allow(thread_sleep)` (e.g. measured backoff,
//!   test traffic shaping).
//! * **R5 `unmetered-op`** — public methods of `BTree` (alias `Tree23`) /
//!   `RecencyMap` in
//!   `crates/twothree` must route through the `cost` metering layer: a body
//!   mentioning `touch` or `pass` (the two `cost::` entry points), or a call
//!   chain reaching one — computed to fixpoint across the whole crate, with
//!   `Node`/`Arena` (where the per-node charging lives) contributing metered names —
//!   or carry `// lint: allow(unmetered)` with a reason.
//!
//! Analysis is token-level, not a full parse: comments and string/char
//! literals are masked out (preserving line numbers) before keyword scans,
//! so `unsafe` in a doc comment does not trip R1, while the original text is
//! kept for the justification-comment rules.

use std::fmt;
use std::path::{Path, PathBuf};

/// A single rule violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule identifier (e.g. `unsafe-outside-pool`).
    pub rule: &'static str,
    /// File the violation is in (repo-relative where possible).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Masks comments and string/char literal *contents* with spaces, keeping
/// line structure (and the delimiters) intact, so token scans see code only.
pub fn mask_noncode(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,          // // ... \n
        Block(usize),  // /* ... */ with nesting depth
        Str,           // "..."
        RawStr(usize), // r#"..."# with `usize` hashes
        Char,          // '...'
    }
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => {
                if c == '/' && next == Some('/') {
                    st = St::Line;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::Block(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                    continue;
                }
                if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // Possible raw string: r"..." or r#"..."#
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        out.extend(std::iter::repeat_n(' ', j + 1 - i));
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Distinguish char literal from lifetime: a lifetime is
                    // '<ident> not followed by a closing quote.
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && b.get(i + 2) != Some(&'\'');
                    if !is_lifetime {
                        st = St::Char;
                        out.push('\'');
                        i += 1;
                        continue;
                    }
                }
                out.push(c);
                i += 1;
            }
            St::Line => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::Block(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
                i += 1;
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        out.extend(std::iter::repeat_n(' ', j - i));
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::Char => {
                if c == '\\' && next.is_some() {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    st = St::Code;
                    out.push('\'');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
        }
    }
    out.into_iter().collect()
}

/// True if `masked[pos..]` starts the identifier `word` at a token boundary.
fn is_word_at(masked: &str, pos: usize, word: &str) -> bool {
    let bytes = masked.as_bytes();
    if pos + word.len() > bytes.len() || &masked[pos..pos + word.len()] != word {
        return false;
    }
    let before_ok = pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
    let after = pos + word.len();
    let after_ok =
        after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
    before_ok && after_ok
}

/// All (line, column) occurrences of identifier `word` in masked source.
fn word_sites(masked: &str, word: &str) -> Vec<(usize, usize)> {
    let mut sites = Vec::new();
    for (ln, line) in masked.lines().enumerate() {
        let mut from = 0;
        while let Some(off) = line[from..].find(word) {
            let pos = from + off;
            // Check boundaries within the line (words never span lines).
            let bytes = line.as_bytes();
            let before_ok =
                pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
            let after = pos + word.len();
            let after_ok = after >= bytes.len()
                || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
            if before_ok && after_ok {
                sites.push((ln + 1, pos));
            }
            from = pos + word.len();
        }
    }
    sites
}

/// One source file presented to the rules.
pub struct SourceFile {
    /// Path, repo-relative (used for crate classification + reporting).
    pub path: PathBuf,
    /// Raw text.
    pub text: String,
}

impl SourceFile {
    fn rel(&self) -> String {
        self.path.to_string_lossy().replace('\\', "/")
    }

    fn in_dir(&self, dir: &str) -> bool {
        self.rel().starts_with(dir)
    }

    /// 1-based line of the first `#[cfg(test)]` attribute (masked scan);
    /// lines at or after it are exempt from the ordering-justification rule.
    fn test_tail_start(&self, masked: &str) -> Option<usize> {
        for (ln, line) in masked.lines().enumerate() {
            let t: String = line.split_whitespace().collect();
            if t.contains("#[cfg(test)]") {
                return Some(ln + 1);
            }
        }
        None
    }
}

/// True if `marker` appears on the site's line, inside the statement the
/// site belongs to (multi-line calls keep their justification above the
/// call), or in the contiguous comment block immediately above it.  The
/// upward scan crosses comment lines and statement-continuation lines and
/// stops at the end of the previous statement (`;`, `{` or `}`), bounded to
/// `MAX_LOOKBACK` lines so a pathological file cannot stall the scan.
fn line_has_allow(lines: &[&str], ln_1based: usize, marker: &str) -> bool {
    const MAX_LOOKBACK: usize = 16;
    let idx = ln_1based - 1;
    if lines[idx].contains(marker) {
        return true;
    }
    let mut seen_comment_block = false;
    for back in 1..=MAX_LOOKBACK.min(idx) {
        let line = lines[idx - back].trim();
        if line.contains(marker) {
            return true;
        }
        if line.is_empty() {
            // A blank line separates statements (and detaches any comment
            // block above it from the site).
            return false;
        }
        let is_comment = line.starts_with("//");
        if is_comment {
            seen_comment_block = true;
            continue;
        }
        if seen_comment_block {
            // We walked up through the justification block and ran out of it.
            return false;
        }
        if line.ends_with(';') || line.ends_with('{') || line.ends_with('}') {
            // End of the previous statement: the site's own statement (plus
            // its comment block, had there been one) is exhausted.
            return false;
        }
        // Continuation line of the site's own multi-line statement.
    }
    false
}

/// R1: `unsafe` outside `crates/pool`.
fn rule_unsafe(file: &SourceFile, masked: &str, out: &mut Vec<Violation>) {
    if file.in_dir("crates/pool/") {
        return;
    }
    for (line, _) in word_sites(masked, "unsafe") {
        out.push(Violation {
            rule: "unsafe-outside-pool",
            file: file.path.clone(),
            line,
            message: "`unsafe` is confined to crates/pool; move the code or \
                      express it safely"
                .to_string(),
        });
    }
}

/// R2: `#![forbid(unsafe_code)]` header in every non-pool crate's lib.rs.
fn rule_forbid_header(file: &SourceFile, masked: &str, out: &mut Vec<Violation>) {
    let rel = file.rel();
    let is_lib = rel.starts_with("crates/") && rel.ends_with("/src/lib.rs");
    if !is_lib || file.in_dir("crates/pool/") {
        return;
    }
    let has = masked.lines().any(|l| {
        l.split_whitespace()
            .collect::<String>()
            .contains("#![forbid(unsafe_code)]")
    });
    if !has {
        out.push(Violation {
            rule: "missing-forbid-header",
            file: file.path.clone(),
            line: 1,
            message: "crate root must declare #![forbid(unsafe_code)]".to_string(),
        });
    }
}

/// R3: `// ord:` justification on every non-SeqCst ordering site in the
/// concurrent crates' non-test code.
fn rule_ord_justified(file: &SourceFile, masked: &str, out: &mut Vec<Violation>) {
    let concurrent = [
        "crates/sync/",
        "crates/pool/",
        "crates/core/",
        "crates/shard/",
        "crates/svc/",
        "crates/wal/",
    ];
    if !concurrent.iter().any(|d| file.in_dir(d)) {
        return;
    }
    let test_tail = file.test_tail_start(masked).unwrap_or(usize::MAX);
    let lines: Vec<&str> = file.text.lines().collect();
    for token in ["Relaxed", "Acquire", "Release", "AcqRel"] {
        for (line, col) in word_sites(masked, token) {
            if line >= test_tail {
                continue;
            }
            // Only `Ordering::<token>` sites (or use-imported bare tokens
            // preceded by `::`); a struct field named Release would be odd,
            // but be precise anyway.
            let masked_line = masked.lines().nth(line - 1).unwrap_or("");
            let prefix = &masked_line[..col];
            if !prefix.trim_end().ends_with("::") {
                continue;
            }
            if !line_has_allow(&lines, line, "// ord:") {
                out.push(Violation {
                    rule: "unjustified-ordering",
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "Ordering::{token} needs a `// ord:` justification \
                         comment (on the site's statement or the comment \
                         block above it), backed by a model harness or a \
                         happens-before argument"
                    ),
                });
            }
        }
    }
}

/// R4: no sleep-based synchronization in crates/.
fn rule_no_sleep(file: &SourceFile, masked: &str, out: &mut Vec<Violation>) {
    if !file.in_dir("crates/") {
        return;
    }
    let lines: Vec<&str> = file.text.lines().collect();
    for (line, col) in word_sites(masked, "sleep") {
        let masked_line = masked.lines().nth(line - 1).unwrap_or("");
        let prefix = &masked_line[..col];
        // `thread::sleep(` / `std::thread::sleep(`; ignore e.g. the pool's
        // `Sleep` struct (capital S) and method names like `sleepers`.
        if !prefix.trim_end().ends_with("thread::") {
            continue;
        }
        if !line_has_allow(&lines, line, "// lint: allow(thread_sleep)") {
            out.push(Violation {
                rule: "sleep-as-sync",
                file: file.path.clone(),
                line,
                message: "thread::sleep in crates/ looks like sleep-based \
                          synchronization; use condvars/doorbells, or annotate \
                          `// lint: allow(thread_sleep)` with a reason"
                    .to_string(),
            });
        }
    }
}

/// R5: public `BTree` (alias `Tree23`) / `RecencyMap` methods route through
/// the `cost`
/// metering layer.  The fixpoint is **crate-global**: `Node` (where the
/// actual per-node `touch` charging lives, now `Arena`) and the public types are
/// gathered across every `crates/twothree` file, seeded with bodies that
/// mention `touch` or `pass` (the two `cost::` entry points), and closed
/// over `.name(` / `Self::name(` / `Node::name(` calls by method name.
/// Name-level resolution is an approximation, like the rest of this
/// token-level analyzer — good enough for the repo's idiom.
fn rule_metered_global(files: &[(&SourceFile, String)], out: &mut Vec<Violation>) {
    struct Site<'a> {
        file: &'a SourceFile,
        method: Method,
        report: bool,
    }
    let mut sites: Vec<Site> = Vec::new();
    for (file, masked) in files {
        if !file.in_dir("crates/twothree/") {
            continue;
        }
        for m in collect_impl_methods(masked, &["Tree23", "BTree", "RecencyMap"]) {
            sites.push(Site {
                file,
                method: m,
                report: true,
            });
        }
        for m in collect_impl_methods(masked, &["Node", "Arena"]) {
            sites.push(Site {
                file,
                method: m,
                report: false,
            });
        }
    }
    if sites.is_empty() {
        return;
    }
    let mut metered: Vec<bool> = sites
        .iter()
        .map(|s| {
            !word_sites(&s.method.body, "touch").is_empty()
                || !word_sites(&s.method.body, "pass").is_empty()
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..sites.len() {
            if metered[i] {
                continue;
            }
            for (j, callee) in sites.iter().enumerate() {
                if !metered[j] || i == j {
                    continue;
                }
                let name = &callee.method.name;
                if sites[i].method.body.contains(&format!(".{name}("))
                    || sites[i].method.body.contains(&format!("Self::{name}("))
                    || sites[i].method.body.contains(&format!("Node::{name}("))
                {
                    metered[i] = true;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (i, s) in sites.iter().enumerate() {
        if !s.report || !s.method.is_pub || metered[i] {
            continue;
        }
        let lines: Vec<&str> = s.file.text.lines().collect();
        if line_has_allow(&lines, s.method.line, "// lint: allow(unmetered)") {
            continue;
        }
        out.push(Violation {
            rule: "unmetered-op",
            file: s.file.path.clone(),
            line: s.method.line,
            message: format!(
                "public method `{}` does not route through cost::touch \
                 metering (directly or via a metered sibling); meter it or \
                 annotate `// lint: allow(unmetered)` with a reason",
                s.method.name
            ),
        });
    }
}

struct Method {
    name: String,
    line: usize,
    is_pub: bool,
    body: String,
}

/// Extracts methods of `impl`-blocks whose header mentions one of `types`.
/// Brace matching over masked text; robust enough for this repo's idiom.
fn collect_impl_methods(masked: &str, types: &[&str]) -> Vec<Method> {
    let mut methods = Vec::new();
    let chars: Vec<char> = masked.chars().collect();
    let mut line_of = vec![1usize; chars.len() + 1];
    {
        let mut ln = 1;
        for (i, &c) in chars.iter().enumerate() {
            line_of[i] = ln;
            if c == '\n' {
                ln += 1;
            }
        }
        line_of[chars.len()] = ln;
    }
    let mut i = 0;
    while i < chars.len() {
        if is_word_at(masked, i, "impl") {
            // Header: up to the opening brace.
            let open = match masked[i..].find('{') {
                Some(o) => i + o,
                None => break,
            };
            let header = &masked[i..open];
            if header.contains("for ")
                && !types.iter().any(|t| {
                    header
                        .split("for ")
                        .nth(1)
                        .map(|tail| tail.contains(t))
                        .unwrap_or(false)
                })
            {
                // Trait impl for some other type.
                i = open + 1;
                continue;
            }
            if !types.iter().any(|t| header.contains(t)) {
                i = open + 1;
                continue;
            }
            // Scan the impl body for `fn` items.
            let close = matching_brace(&chars, open);
            let mut j = open + 1;
            while j < close {
                if is_word_at(masked, j, "fn") {
                    // Name follows.
                    let after = j + 2;
                    let name: String = masked[after..]
                        .chars()
                        .skip_while(|c| c.is_whitespace())
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    // Visibility: look back on the same construct for `pub`.
                    let lookback_start = masked[..j].rfind(['}', ';', '{']).map_or(0, |p| p + 1);
                    let is_pub = masked[lookback_start..j].contains("pub");
                    // Body: next '{' at this nesting (skip `;` fn decls).
                    let semi = masked[j..close].find(';').map(|p| j + p);
                    let body_open = masked[j..close].find('{').map(|p| j + p);
                    match (body_open, semi) {
                        (Some(bo), s) if s.is_none_or(|sp| bo < sp) => {
                            let bc = matching_brace(&chars, bo);
                            methods.push(Method {
                                name,
                                line: line_of[j],
                                is_pub,
                                body: masked[bo..=bc.min(masked.len() - 1)].to_string(),
                            });
                            j = bc + 1;
                            continue;
                        }
                        _ => {
                            j += 2;
                            continue;
                        }
                    }
                }
                j += 1;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    methods
}

/// Index of the `}` matching the `{` at `open` (or the last index).
fn matching_brace(chars: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    chars.len().saturating_sub(1)
}

/// Runs every rule over `files`; returns all violations, sorted by path/line.
pub fn run(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let masked: Vec<(&SourceFile, String)> =
        files.iter().map(|f| (f, mask_noncode(&f.text))).collect();
    for (f, m) in &masked {
        rule_unsafe(f, m, &mut out);
        rule_forbid_header(f, m, &mut out);
        rule_ord_justified(f, m, &mut out);
        rule_no_sleep(f, m, &mut out);
    }
    rule_metered_global(&masked, &mut out);
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    out
}

/// Walks `root` for `crates/**/*.rs` files (skipping `target/`) and returns
/// them with repo-relative paths.
pub fn collect_repo_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    walk(&crates, root, &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "lint_fixtures" {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .map(|p| p.to_path_buf())
                .unwrap_or_else(|_| path.clone());
            out.push(SourceFile { path: rel, text });
        }
    }
    Ok(())
}
