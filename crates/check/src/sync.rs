//! Shim synchronization types: drop-in stand-ins for `std::sync::atomic::*`
//! and `parking_lot::{Mutex, Condvar}` that production crates use directly.
//!
//! In a normal build/run every operation takes a one-branch fast path (a
//! `const`-initialised thread-local flag check) and delegates to the real
//! `std`/`parking_lot` primitive — semantics and performance are unchanged.
//! Inside a [`crate::model::Model::check`] execution the flag is set, and the
//! same operations instead *declare* themselves to the model scheduler and
//! park until the explored schedule grants them, which is what lets the
//! checker enumerate interleavings deterministically.
//!
//! Model-mode semantic notes:
//!
//! * `compare_exchange_weak` is modeled as the strong variant (no spurious
//!   failure).  Spurious CAS failure only adds retry loops, which the
//!   surrounding code must tolerate anyway; modeling it would blow up the
//!   schedule space without adding distinguishable outcomes for the
//!   protocols checked here.
//! * `Condvar::wait` never wakes spuriously in the model — that is the
//!   *adversarial* choice for missed-wakeup detection, because a spurious
//!   wake can only mask a lost notification.  `wait_timeout` may time out at
//!   any schedule point (a scheduler choice), bounded per thread by
//!   [`crate::model::Model::max_timeouts`].
//! * Atomic orderings are honoured by the TSO mode only for plain stores
//!   (buffered unless `SeqCst`); loads, RMWs and lock edges act on visible
//!   memory.  See the `model` module docs for what this can and cannot
//!   refute.

use crate::model::{current_handle, Handle, Loc, LocKind, Op, Rmw};
pub use std::sync::atomic::Ordering;

/// Result of a timed condvar wait (mirrors `parking_lot::WaitTimeoutResult`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

macro_rules! shim_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ident, $ty:ty) => {
        $(#[$meta])*
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            fn loc(&self, h: &Handle) -> Loc {
                h.exec.loc(
                    self as *const _ as usize,
                    LocKind::Atomic,
                    self.inner.load(Ordering::Relaxed) as usize,
                )
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $ty {
                match current_handle() {
                    None => self.inner.load(ord),
                    Some(h) => {
                        let l = self.loc(&h);
                        h.exec.declare(&h, Op::Load(l, ord)).0 as $ty
                    }
                }
            }

            /// Atomic store.
            pub fn store(&self, v: $ty, ord: Ordering) {
                match current_handle() {
                    None => self.inner.store(v, ord),
                    Some(h) => {
                        let l = self.loc(&h);
                        h.exec.declare(&h, Op::Store(l, v as usize, ord));
                    }
                }
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                match current_handle() {
                    None => self.inner.swap(v, ord),
                    Some(h) => {
                        let l = self.loc(&h);
                        h.exec.declare(&h, Op::Rmw(l, Rmw::Swap(v as usize), ord)).0 as $ty
                    }
                }
            }

            /// Atomic fetch-add (wrapping); returns the previous value.
            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                match current_handle() {
                    None => self.inner.fetch_add(v, ord),
                    Some(h) => {
                        let l = self.loc(&h);
                        h.exec.declare(&h, Op::Rmw(l, Rmw::Add(v as usize), ord)).0 as $ty
                    }
                }
            }

            /// Atomic fetch-sub (wrapping); returns the previous value.
            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                match current_handle() {
                    None => self.inner.fetch_sub(v, ord),
                    Some(h) => {
                        let l = self.loc(&h);
                        h.exec.declare(&h, Op::Rmw(l, Rmw::Sub(v as usize), ord)).0 as $ty
                    }
                }
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match current_handle() {
                    None => self.inner.compare_exchange(current, new, success, failure),
                    Some(h) => {
                        let l = self.loc(&h);
                        let (prev, ok) = h.exec.declare(
                            &h,
                            Op::Rmw(
                                l,
                                Rmw::Cas {
                                    expected: current as usize,
                                    new: new as usize,
                                },
                                success,
                            ),
                        );
                        if ok {
                            Ok(prev as $ty)
                        } else {
                            Err(prev as $ty)
                        }
                    }
                }
            }

            /// Atomic weak compare-exchange.  Modeled as the strong variant
            /// under the checker (no spurious failure; see module docs).
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match current_handle() {
                    None => self
                        .inner
                        .compare_exchange_weak(current, new, success, failure),
                    Some(_) => self.compare_exchange(current, new, success, failure),
                }
            }

            /// Non-atomic access through exclusive borrow.
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the inner value.
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0 as $ty)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

shim_atomic!(
    /// Shim for `std::sync::atomic::AtomicUsize`; see the module docs.
    AtomicUsize,
    AtomicUsize,
    usize
);
shim_atomic!(
    /// Shim for `std::sync::atomic::AtomicU64`; see the module docs.
    /// Model-mode values are stored as `usize` (64-bit platforms).
    AtomicU64,
    AtomicU64,
    u64
);
shim_atomic!(
    /// Shim for `std::sync::atomic::AtomicU32`; see the module docs.
    AtomicU32,
    AtomicU32,
    u32
);

/// Shim for `std::sync::atomic::AtomicBool`; see the module docs.
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic bool.
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn loc(&self, h: &Handle) -> Loc {
        h.exec.loc(
            self as *const _ as usize,
            LocKind::Atomic,
            self.inner.load(Ordering::Relaxed) as usize,
        )
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        match current_handle() {
            None => self.inner.load(ord),
            Some(h) => {
                let l = self.loc(&h);
                h.exec.declare(&h, Op::Load(l, ord)).0 != 0
            }
        }
    }

    /// Atomic store.
    pub fn store(&self, v: bool, ord: Ordering) {
        match current_handle() {
            None => self.inner.store(v, ord),
            Some(h) => {
                let l = self.loc(&h);
                h.exec.declare(&h, Op::Store(l, v as usize, ord));
            }
        }
    }

    /// Atomic swap; returns the previous value.
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match current_handle() {
            None => self.inner.swap(v, ord),
            Some(h) => {
                let l = self.loc(&h);
                h.exec.declare(&h, Op::Rmw(l, Rmw::Swap(v as usize), ord)).0 != 0
            }
        }
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match current_handle() {
            None => self.inner.compare_exchange(current, new, success, failure),
            Some(h) => {
                let l = self.loc(&h);
                let (prev, ok) = h.exec.declare(
                    &h,
                    Op::Rmw(
                        l,
                        Rmw::Cas {
                            expected: current as usize,
                            new: new as usize,
                        },
                        success,
                    ),
                );
                if ok {
                    Ok(prev != 0)
                } else {
                    Err(prev != 0)
                }
            }
        }
    }

    /// Non-atomic access through exclusive borrow.
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.load(Ordering::Relaxed))
            .finish()
    }
}

/// Shim for `parking_lot::Mutex`: `lock()` returns a guard directly (no
/// poison `Result`); under the model the lock/unlock edges are scheduling
/// points arbitrated by the checker.
pub struct Mutex<T> {
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: parking_lot::Mutex::new(value),
        }
    }

    fn loc(&self, h: &Handle) -> Loc {
        h.exec
            .loc(self as *const Mutex<T> as usize, LocKind::Mutex, 0)
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current_handle() {
            None => MutexGuard {
                lock: self,
                inner: Some(self.inner.lock()),
            },
            Some(h) => {
                let l = self.loc(&h);
                h.exec.declare(&h, Op::MutexLock(l));
                // The scheduler granted us model ownership; every other model
                // thread physically releases before declaring its unlock, so
                // the inner lock is free.
                let inner = self
                    .inner
                    .try_lock()
                    .expect("model granted a physically held mutex");
                MutexGuard {
                    lock: self,
                    inner: Some(inner),
                }
            }
        }
    }

    /// Non-atomic access through exclusive borrow.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releasing it is a scheduling point under the model.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Physically release first, then tell the scheduler: the next model
        // thread is only granted the lock after our unlock is applied, so it
        // always finds the inner mutex free.
        let held = self.inner.take().is_some();
        if !held {
            return;
        }
        if std::thread::panicking() {
            // Unwinding (assertion failure or model teardown): skip the
            // scheduling point — declaring here could double-panic.
            return;
        }
        if let Some(h) = current_handle() {
            let l = self.lock.loc(&h);
            h.exec.declare(&h, Op::MutexUnlock(l));
        }
    }
}

/// Shim for `parking_lot::Condvar`; under the model, waits and notifies are
/// scheduler transitions with no spurious wake-ups (see module docs).
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: parking_lot::Condvar::new(),
        }
    }

    fn loc(&self, h: &Handle) -> Loc {
        h.exec
            .loc(self as *const Condvar as usize, LocKind::Condvar, 0)
    }

    /// Blocks until notified, releasing `guard`'s mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_inner(guard, false);
    }

    /// Blocks until notified or (in real runs) `timeout` elapses.  Under the
    /// model the timeout is a scheduler choice, not a clock.  (Named after
    /// parking_lot's `wait_for` so the shim is drop-in.)
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        match current_handle() {
            None => {
                let mut inner = guard.inner.take().expect("guard holds the lock");
                let r = self.inner.wait_for(&mut inner, timeout);
                guard.inner = Some(inner);
                WaitTimeoutResult {
                    timed_out: r.timed_out(),
                }
            }
            Some(_) => WaitTimeoutResult {
                timed_out: self.wait_inner(guard, true),
            },
        }
    }

    fn wait_inner<T>(&self, guard: &mut MutexGuard<'_, T>, timed: bool) -> bool {
        match current_handle() {
            None => {
                let mut inner = guard.inner.take().expect("guard holds the lock");
                self.inner.wait(&mut inner);
                guard.inner = Some(inner);
                false
            }
            Some(h) => {
                let cv = self.loc(&h);
                let mutex = guard.lock.loc(&h);
                // Physically release before declaring: the scheduler performs
                // the model release-and-enqueue atomically, and only grants
                // the mutex onward after that.
                drop(guard.inner.take());
                let (_, timed_out) = h.exec.declare(&h, Op::CvWait { cv, mutex, timed });
                // Granted = the model mutex was reassigned to us after a
                // notify or timeout; the physical lock is free (see above).
                guard.inner = Some(
                    guard
                        .lock
                        .inner
                        .try_lock()
                        .expect("model granted a physically held mutex"),
                );
                timed_out
            }
        }
    }

    /// Wakes one waiter (FIFO under the model).
    pub fn notify_one(&self) {
        match current_handle() {
            None => {
                self.inner.notify_one();
            }
            Some(h) => {
                let cv = self.loc(&h);
                h.exec.declare(&h, Op::CvNotify { cv, all: false });
            }
        }
    }

    /// Wakes all current waiters.
    pub fn notify_all(&self) {
        match current_handle() {
            None => {
                self.inner.notify_all();
            }
            Some(h) => {
                let cv = self.loc(&h);
                h.exec.declare(&h, Op::CvNotify { cv, all: true });
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
