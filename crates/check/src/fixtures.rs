//! Intentionally buggy protocol variants used as the checker's regression
//! teeth: the self-tests assert a failing schedule is found and replayable.

use crate::sync::{AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};
use std::sync::Arc;

/// The PR 2 missed-wakeup doorbell bug, resurrected: `ring` bumps the
/// generation *without* holding the gate mutex.  A waiter can then check the
/// generation, decide to sleep, and lose the notification that fires between
/// its check and its wait — the exact lost-wakeup the gate lock prevents.
pub struct BuggyDoorbell {
    generation: AtomicU64,
    gate: Mutex<()>,
    cv: Condvar,
}

impl BuggyDoorbell {
    /// Creates a doorbell at generation 0.
    pub fn new() -> Self {
        BuggyDoorbell {
            generation: AtomicU64::new(0),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Current generation.
    pub fn current(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// BUG: increments and notifies without taking the gate, so the bump is
    /// not ordered against a concurrent waiter's check-then-sleep.
    pub fn ring(&self) -> u64 {
        let next = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        self.cv.notify_all();
        next
    }

    /// Blocks until the generation passes `seen` (untimed: a lost wakeup is
    /// a permanent sleep, which the model reports as a deadlock).
    pub fn wait_past(&self, seen: u64) {
        let mut gate = self.gate.lock();
        while self.current() == seen {
            self.cv.wait(&mut gate);
        }
    }
}

impl Default for BuggyDoorbell {
    fn default() -> Self {
        Self::new()
    }
}

/// Model harness for [`BuggyDoorbell`]: one waiter, one ringer.  Correct
/// doorbells guarantee the waiter eventually observes the ring; the buggy
/// one admits a schedule where the notify fires between the waiter's
/// generation check and its `cv.wait`, deadlocking the waiter.
pub fn buggy_doorbell_harness() {
    let bell = Arc::new(BuggyDoorbell::new());
    let seen = bell.current();
    let ringer = {
        let bell = Arc::clone(&bell);
        crate::thread::spawn_named("ringer".to_string(), move || {
            bell.ring();
        })
    };
    bell.wait_past(seen);
    ringer.join().unwrap();
}

/// A broken MPSC slot claim: the CAS that makes claiming atomic is replaced
/// by a load-then-store (the classic lost-update race).  Two producers can
/// both observe the same tail and claim the same slot.
pub struct RacyClaim {
    tail: AtomicUsize,
    /// Number of times each of the two slots was claimed.
    claims: [AtomicUsize; 2],
}

impl RacyClaim {
    /// Creates a two-slot ring with no claims.
    pub fn new() -> Self {
        RacyClaim {
            tail: AtomicUsize::new(0),
            claims: [AtomicUsize::new(0), AtomicUsize::new(0)],
        }
    }

    /// BUG: claim = load + store instead of compare-exchange.
    pub fn claim(&self) -> usize {
        let t = self.tail.load(Ordering::Acquire);
        self.tail.store(t + 1, Ordering::Release);
        self.claims[t % 2].fetch_add(1, Ordering::AcqRel);
        t
    }
}

impl Default for RacyClaim {
    fn default() -> Self {
        Self::new()
    }
}

/// Model harness for [`RacyClaim`]: two producers claim once each; the
/// assertion that they claimed distinct slots fails on the interleaving
/// where both load the same tail.
pub fn racy_claim_harness() {
    let ring = Arc::new(RacyClaim::new());
    let other = {
        let ring = Arc::clone(&ring);
        crate::thread::spawn_named("producer".to_string(), move || ring.claim())
    };
    let a = ring.claim();
    let b = other.join().unwrap();
    assert_ne!(a, b, "two producers claimed the same slot");
}

/// A Dekker-style store/load handshake with the publisher's store weakened
/// from `SeqCst` to `Release` — exactly the downgrade the ordering audit
/// must reject for the pool's latch/client-gate pair.  Under TSO the
/// `Release` store may sit in the store buffer while the same thread's
/// subsequent load runs, so both sides can read 0 and *neither* wakes the
/// other.
pub struct RelaxedDekker {
    /// "Latch is set" flag (publisher writes, waiter reads).
    flag: AtomicUsize,
    /// "A waiter is registered" flag (waiter writes, publisher reads).
    waiter: AtomicUsize,
}

impl RelaxedDekker {
    /// Creates the handshake with both sides idle.
    pub fn new() -> Self {
        RelaxedDekker {
            flag: AtomicUsize::new(0),
            waiter: AtomicUsize::new(0),
        }
    }
}

impl Default for RelaxedDekker {
    fn default() -> Self {
        Self::new()
    }
}

/// Model harness for [`RelaxedDekker`] (run under [`crate::Model`] with
/// `tso = true`): publisher stores `flag` (Release — BUG, must be SeqCst)
/// then loads `waiter`; waiter stores `waiter` (Release — same bug) then
/// loads `flag`.  The protocol requires at least one side to see the other;
/// the store-buffer interleaving where both loads run before either buffered
/// store drains violates that.
pub fn relaxed_dekker_harness() {
    let hs = Arc::new(RelaxedDekker::new());
    let waiter = {
        let hs = Arc::clone(&hs);
        crate::thread::spawn_named("waiter".to_string(), move || {
            hs.waiter.store(1, Ordering::Release);
            hs.flag.load(Ordering::Acquire)
        })
    };
    hs.flag.store(1, Ordering::Release);
    let saw_waiter = hs.waiter.load(Ordering::Acquire);
    let saw_flag = waiter.join().unwrap();
    assert!(
        saw_waiter == 1 || saw_flag == 1,
        "handshake lost on both sides: publisher missed the waiter AND the \
         waiter missed the flag (missed-wakeup under TSO)"
    );
}

/// A correct (SeqCst) version of the same handshake, proving the checker
/// does NOT flag the properly ordered protocol under TSO.
pub fn seqcst_dekker_harness() {
    let hs = Arc::new(RelaxedDekker::new());
    let waiter = {
        let hs = Arc::clone(&hs);
        crate::thread::spawn_named("waiter".to_string(), move || {
            hs.waiter.store(1, Ordering::SeqCst);
            hs.flag.load(Ordering::SeqCst)
        })
    };
    hs.flag.store(1, Ordering::SeqCst);
    let saw_waiter = hs.waiter.load(Ordering::SeqCst);
    let saw_flag = waiter.join().unwrap();
    assert!(
        saw_waiter == 1 || saw_flag == 1,
        "SeqCst handshake must never lose both sides"
    );
}
