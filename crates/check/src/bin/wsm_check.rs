//! `wsm-check` CLI: runs the bundled self-checks and seeded-bug fixtures.
//!
//! The full protocol harnesses (real `MpscShard` / doorbell / registry
//! handshake code) live in `crates/check/tests/` because they need the
//! production crates as dev-dependencies, which a binary target cannot see;
//! run them with `cargo test -p wsm-check`.  This binary proves the engine
//! itself: sanity schedules, deadlock detection, TSO refutation, and the
//! three intentionally buggy fixtures with their replayable traces.
//!
//! Usage:
//!   wsm-check [selfcheck|fixtures|all] [--bound N] [--tso] [--max-schedules N]

#![forbid(unsafe_code)]

use wsm_check::{fixtures, Model};

struct Args {
    mode: String,
    bound: u32,
    max_schedules: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: "all".to_string(),
        bound: 2,
        max_schedules: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "selfcheck" | "fixtures" | "all" => args.mode = a,
            "--bound" => {
                args.bound = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--bound needs an integer"));
            }
            "--max-schedules" => {
                args.max_schedules = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--max-schedules needs an integer")),
                );
            }
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: wsm-check [selfcheck|fixtures|all] [--bound N] [--max-schedules N]\n\
         \n\
         selfcheck  engine sanity: schedule counts, deadlock + TSO detection\n\
         fixtures   seeded protocol bugs must be found with replayable traces\n\
         all        both (default)\n\
         \n\
         protocol harnesses on the real production code run via:\n\
         cargo test -p wsm-check"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();
    let mut failed = false;
    if args.mode == "selfcheck" || args.mode == "all" {
        failed |= !selfcheck(&args);
    }
    if args.mode == "fixtures" || args.mode == "all" {
        failed |= !fixtures_check(&args);
    }
    if failed {
        std::process::exit(1);
    }
    println!("wsm-check: all checks passed");
}

fn model(args: &Args) -> Model {
    let mut m = Model::with_bound(args.bound);
    if let Some(cap) = args.max_schedules {
        m.max_schedules = Some(cap);
    }
    m
}

fn selfcheck(args: &Args) -> bool {
    let mut ok = true;

    // Two independent increment threads: exhaustive exploration must agree
    // on the final count in every schedule.
    let r = model(args).check(|| {
        let c = std::sync::Arc::new(wsm_check::sync::AtomicUsize::new(0));
        let t = {
            let c = std::sync::Arc::clone(&c);
            wsm_check::thread::spawn(move || {
                c.fetch_add(1, wsm_check::sync::Ordering::SeqCst);
            })
        };
        c.fetch_add(1, wsm_check::sync::Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(wsm_check::sync::Ordering::SeqCst), 2);
    });
    ok &= report("selfcheck: atomic increments", &r, false);

    // Classic lock-order-inversion deadlock must be detected.
    let r = Model::with_bound(2).check(|| {
        use wsm_check::sync::Mutex;
        let a = std::sync::Arc::new(Mutex::new(0u32));
        let b = std::sync::Arc::new(Mutex::new(0u32));
        let t = {
            let (a, b) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
            wsm_check::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
        };
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join().unwrap();
    });
    ok &= report("selfcheck: deadlock detection", &r, true);

    // TSO mode must refute the under-ordered Dekker handshake and accept
    // the SeqCst one.
    let r = Model::tso_with_bound(args.bound.max(2)).check(fixtures::relaxed_dekker_harness);
    ok &= report("selfcheck: TSO refutes Release-store Dekker", &r, true);
    let r = Model::tso_with_bound(args.bound.max(2)).check(fixtures::seqcst_dekker_harness);
    ok &= report("selfcheck: TSO accepts SeqCst Dekker", &r, false);

    ok
}

fn fixtures_check(args: &Args) -> bool {
    let mut ok = true;

    let r = model(args).check(fixtures::buggy_doorbell_harness);
    ok &= report("fixture: missed-wakeup doorbell (PR 2 bug)", &r, true);

    let r = model(args).check(fixtures::racy_claim_harness);
    ok &= report("fixture: racy MPSC slot claim", &r, true);

    let r = Model::tso_with_bound(args.bound.max(2)).check(fixtures::relaxed_dekker_harness);
    ok &= report("fixture: under-ordered Dekker handshake (TSO)", &r, true);

    ok
}

fn report(name: &str, r: &wsm_check::Report, expect_failure: bool) -> bool {
    match (&r.failure, expect_failure) {
        (Some(f), true) => {
            println!(
                "PASS {name}: failing schedule found after {} schedules",
                r.schedules
            );
            println!("{}", indent(&f.render()));
            true
        }
        (None, false) => {
            println!(
                "PASS {name}: {} schedules, {} pruned, no failure",
                r.schedules, r.pruned
            );
            true
        }
        (Some(f), false) => {
            println!("FAIL {name}: unexpected failing schedule");
            println!("{}", indent(&f.render()));
            false
        }
        (None, true) => {
            println!(
                "FAIL {name}: expected a failing schedule, {} schedules all passed",
                r.schedules
            );
            false
        }
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
