//! `wsm-lint` CLI: structural repo-law analyzer.  Exits non-zero on any
//! violation.  See `wsm_check::lint` for the rules.
//!
//! Usage: wsm-lint [repo-root]   (default: current directory)

#![forbid(unsafe_code)]

use std::path::PathBuf;
use wsm_check::lint;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let files = match lint::collect_repo_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("wsm-lint: cannot walk {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if files.is_empty() {
        eprintln!(
            "wsm-lint: no crates/**/*.rs files under {} (wrong root?)",
            root.display()
        );
        std::process::exit(2);
    }
    let violations = lint::run(&files);
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        println!("wsm-lint: {} files clean", files.len());
    } else {
        eprintln!("wsm-lint: {} violation(s)", violations.len());
        std::process::exit(1);
    }
}
