//! Shim threading: `spawn`/`yield_now`/`JoinHandle` that delegate to
//! `std::thread` normally and become model threads under the checker.

use crate::model::{current_handle, Op, ThreadId};
use std::sync::{Arc, Mutex, PoisonError};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: ThreadId,
        result: Arc<Mutex<Option<T>>>,
    },
}

/// Handle to a spawned (possibly model) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Under the model a panic in the child surfaces as a model failure
    /// before the join completes, so this never observes `Err` there.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { tid, result } => {
                let h = current_handle().expect("model JoinHandle joined outside the model");
                h.exec.declare(&h, Op::Join(tid));
                let v = result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("joined model thread left no result");
                Ok(v)
            }
        }
    }
}

/// Spawns a thread running `f`.  Inside a model execution this creates a
/// model thread whose every shim operation is schedule-explored; otherwise it
/// is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named("child".to_string(), f)
}

/// [`spawn`] with a name used in model traces.
pub fn spawn_named<F, T>(name: String, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_handle() {
        None => JoinHandle {
            inner: Inner::Std(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(f)
                    .expect("spawn thread"),
            ),
        },
        Some(h) => {
            // Declaring Spawn makes thread creation itself a scheduling
            // point; the scheduler grants `Run` and we register the new
            // model thread here (we own the closure).
            h.exec.declare(&h, Op::Spawn);
            let result = Arc::new(Mutex::new(None));
            let slot = Arc::clone(&result);
            let tid = h.exec.spawn_thread(name, move || {
                let v = f();
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            });
            JoinHandle {
                inner: Inner::Model { tid, result },
            }
        }
    }
}

/// Yields execution.  Under the model this is a pure scheduling point.
pub fn yield_now() {
    match current_handle() {
        None => std::thread::yield_now(),
        Some(h) => {
            h.exec.declare(&h, Op::Yield);
        }
    }
}
