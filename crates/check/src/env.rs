//! Centralized parsing for `WSM_*` environment knobs.
//!
//! Every tunable in the workspace (`WSM_SHARDS`, `WSM_POOL_THREADS`,
//! `WSM_INLINE_BATCH`, `WSM_SPIN_WAIT`, `WSM_HANDOFF`, the `WSM_WAL_*`
//! family) goes through this module instead of hand-rolled
//! `var(..).ok().and_then(parse)` chains.  The difference is observability:
//! an invalid value used to be silently swallowed into the default —
//! `WSM_SHARDS=0` ran unsharded without a word, a typo'd
//! `WSM_POOL_THREADS=fourteen` benchmarked on the default thread count while
//! the operator believed otherwise.  Here an unparsable or out-of-range
//! value falls back to the default *and warns once per variable* on stderr,
//! naming the variable, the rejected value and the expected form.
//!
//! The module lives in `wsm-check` because it is the one crate below every
//! consumer in the dependency graph (`wsm-pool` cannot see `wsm-core`);
//! `wsm-core` re-exports it as `wsm_core::env` for everything above the
//! pool.

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::Mutex;

/// Warns once per variable name for the lifetime of the process.  Repeated
/// lookups of the same bad knob (maps are often constructed in loops) must
/// not spam stderr.
fn warn_once(name: &str, raw: &str, expected: &str) {
    static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let mut warned = WARNED.lock().unwrap_or_else(|e| e.into_inner());
    if warned.insert(name.to_string()) {
        eprintln!(
            "warning: ignoring invalid {name}={raw:?} (expected {expected}); \
             falling back to the default"
        );
    }
}

/// Core of [`parse_with`], split out so the accept/reject/warn logic is unit
/// testable without mutating the process environment (tests run in parallel;
/// `std::env::set_var` would race).  Returns `(value, warned)`.
fn resolve<T>(
    name: &str,
    raw: Option<&str>,
    expected: &str,
    default: T,
    parse: impl FnOnce(&str) -> Option<T>,
) -> (T, bool) {
    match raw {
        None => (default, false),
        Some(raw) => match parse(raw) {
            Some(v) => (v, false),
            None => {
                warn_once(name, raw, expected);
                (default, true)
            }
        },
    }
}

/// Reads `name` from the environment through an arbitrary parser.  Unset →
/// `default` silently; set but rejected by `parse` (or not unicode) →
/// `default` with a once-per-variable stderr warning describing `expected`.
///
/// Use this form for enum-like knobs (`WSM_HANDOFF=cell|doorbell`,
/// `WSM_WAL_SYNC=always|batch|off`); numeric knobs have the [`parse`]
/// shorthand.
pub fn parse_with<T>(
    name: &str,
    expected: &str,
    default: T,
    parse: impl FnOnce(&str) -> Option<T>,
) -> T {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            warn_once(name, "<non-unicode>", expected);
            default
        }
        Ok(raw) => resolve(name, Some(raw.as_str()), expected, default, parse).0,
    }
}

/// Reads a `FromStr` knob with a validity predicate: the value must both
/// parse and satisfy `valid`, otherwise the default is used and a warning is
/// emitted once.  `expected` names the accepted form in that warning, e.g.
/// `"a shard count >= 1"`.
pub fn parse<T: FromStr>(name: &str, expected: &str, default: T, valid: impl Fn(&T) -> bool) -> T {
    parse_with(name, expected, default, |raw| {
        raw.trim().parse::<T>().ok().filter(|v| valid(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_uses_default_without_warning() {
        let (v, warned) = resolve("WSM_TEST_A", None, "a number", 7usize, |r| r.parse().ok());
        assert_eq!(v, 7);
        assert!(!warned);
    }

    #[test]
    fn valid_value_is_accepted() {
        let (v, warned) = resolve("WSM_TEST_B", Some("12"), "a number", 7usize, |r| {
            r.parse().ok()
        });
        assert_eq!(v, 12);
        assert!(!warned);
    }

    #[test]
    fn invalid_value_warns_and_falls_back() {
        let (v, warned) = resolve("WSM_TEST_C", Some("zero"), "a number", 7usize, |r| {
            r.parse().ok()
        });
        assert_eq!(v, 7);
        assert!(warned);
    }

    #[test]
    fn out_of_range_value_warns_and_falls_back() {
        // The WSM_SHARDS=0 shape: parses fine, rejected by the validator.
        let parse = |r: &str| r.parse::<usize>().ok().filter(|&n| n >= 1);
        let (v, warned) = resolve("WSM_TEST_D", Some("0"), "a count >= 1", 1usize, parse);
        assert_eq!(v, 1);
        assert!(warned);
        let (v, warned) = resolve("WSM_TEST_D2", Some("4"), "a count >= 1", 1usize, parse);
        assert_eq!(v, 4);
        assert!(!warned);
    }

    #[test]
    fn warning_fires_once_per_variable() {
        // Both calls report the fallback, but only the first emits (insert
        // returns false the second time); we can only observe the fallback
        // value here, the dedup set is internal — exercise it for coverage.
        for _ in 0..2 {
            let (v, _) = resolve("WSM_TEST_E", Some("junk"), "a number", 3u32, |r| {
                r.parse().ok()
            });
            assert_eq!(v, 3);
        }
        warn_once("WSM_TEST_E", "junk", "a number");
        warn_once("WSM_TEST_E", "junk", "a number");
    }

    #[test]
    fn enum_knob_via_parse_with_shape() {
        let parse = |r: &str| match r {
            "cell" => Some(1),
            "doorbell" => Some(0),
            _ => None,
        };
        assert_eq!(
            resolve("WSM_TEST_F", Some("cell"), "cell|doorbell", 0, parse).0,
            1
        );
        let (v, warned) = resolve("WSM_TEST_F2", Some("Cell"), "cell|doorbell", 0, parse);
        assert_eq!(v, 0);
        assert!(warned);
    }
}
