//! # wsm-check — deterministic concurrency model checker + repo-law lint
//!
//! The verification layer under the workspace's concurrent core.  Two tools
//! share this crate:
//!
//! * **The model checker** ([`model`], [`sync`], [`thread`]): loom/CHESS-style
//!   stateless exploration.  Production crates (`wsm-sync`, `wsm-core`,
//!   `wsm-pool`) build their delicate protocols on the shim types of
//!   [`sync`]; in normal builds those shims are one-branch delegations to
//!   `std`/`parking_lot`, and inside [`model::Model::check`] they route every
//!   load/store/lock/park through a cooperative scheduler that enumerates
//!   thread interleavings (DFS with CHESS preemption bounding, sleep-set
//!   pruning, an optional TSO store-buffer mode, and replayable failing
//!   schedules).  The protocol harnesses live in this crate's `tests/`
//!   directory — cargo permits the dev-dependency cycle — and run under plain
//!   `cargo test -p wsm-check`.
//! * **The lint** ([`lint`], binary `wsm-lint`): a token-level structural
//!   analyzer enforcing repo law — `unsafe` confined to `crates/pool`,
//!   `#![forbid(unsafe_code)]` headers elsewhere, a `// ord:` justification
//!   on every non-`SeqCst` atomic-ordering site in the concurrent crates, no
//!   sleep-based synchronization, and `cost::touch` metering on the public
//!   working-set map operations.
//!
//! [`fixtures`] holds intentionally buggy protocol variants (a resurrected
//! missed-wakeup doorbell, a racy MPSC slot claim, an under-synchronized
//! Dekker handshake) whose failing schedules the self-tests assert the
//! checker finds and replays — the checker's own regression teeth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod fixtures;
pub mod lint;
pub mod model;
pub mod sync;
pub mod thread;

pub use model::{model_active, Failure, Model, Report};
