//! Seeded-bug regression suite: the checker must *find* each intentionally
//! broken protocol in `wsm_check::fixtures`, and the failing schedule it
//! reports must replay deterministically to the same failure.  These are the
//! checker's teeth — if an engine change ever makes one of these pass, the
//! checker has lost the ability to catch the corresponding real-world bug
//! class (and the protocol harnesses' green results mean nothing).

use wsm_check::{fixtures, Model};

/// The PR 2 regression: `ring` bumps the doorbell generation without the
/// gate mutex, so a waiter can check-then-sleep across the notify.  The
/// model must report the lost wakeup as a deadlock of the waiting thread.
#[test]
fn finds_missed_wakeup_doorbell() {
    let failure = Model::with_bound(2)
        .check(fixtures::buggy_doorbell_harness)
        .assert_fails();
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock (lost wakeup), got: {}",
        failure.message
    );
    // The reported schedule must be a complete reproducer on its own.
    let replayed = Model::with_bound(2)
        .replay(&failure.choices, fixtures::buggy_doorbell_harness)
        .expect("replaying the failing schedule must fail again");
    assert_eq!(replayed.message, failure.message);
}

/// The broken MPSC claim protocol (load+store instead of CAS): two producers
/// can claim the same slot.  The model must find the duplicated claim.
#[test]
fn finds_racy_mpsc_claim() {
    let failure = Model::with_bound(2)
        .check(fixtures::racy_claim_harness)
        .assert_fails();
    assert!(
        failure.message.contains("same slot"),
        "expected the duplicate-claim assertion, got: {}",
        failure.message
    );
    let replayed = Model::with_bound(2)
        .replay(&failure.choices, fixtures::racy_claim_harness)
        .expect("replaying the failing schedule must fail again");
    assert_eq!(replayed.message, failure.message);
}

/// The under-ordered Dekker handshake is SC-correct but TSO-broken: only the
/// store-buffer mode may refute it, and the SeqCst version must survive both.
#[test]
fn relaxed_dekker_fails_only_under_tso() {
    Model::with_bound(3)
        .check(fixtures::relaxed_dekker_harness)
        .assert_pass(1);
    let failure = Model::tso_with_bound(3)
        .check(fixtures::relaxed_dekker_harness)
        .assert_fails();
    assert!(
        failure.message.contains("handshake lost"),
        "expected the lost-handshake assertion, got: {}",
        failure.message
    );
    let replayed = Model::tso_with_bound(3)
        .replay(&failure.choices, fixtures::relaxed_dekker_harness)
        .expect("replaying the failing schedule must fail again");
    assert_eq!(replayed.message, failure.message);
    Model::tso_with_bound(3)
        .check(fixtures::seqcst_dekker_harness)
        .assert_pass(1);
}
