//! Model-checks the real combiner hand-off: `wsm_core::doorbell::Doorbell` +
//! `wsm_sync::Activation` + `wsm_core::buffer::ParallelBuffer`.
//!
//! The harness mirrors `ConcurrentMap::call`'s loop exactly (capture the
//! doorbell generation, attempt the activation, combine, ring after release,
//! park with `wait_past`), but with the batched map replaced by delivering
//! each flushed operation's result into its caller's slot.  Two invariants
//! over every interleaving in the bound:
//!
//! * **single combiner** — the activation interface admits at most one
//!   thread into `combine` at a time (asserted with an entry counter);
//! * **no missed wake-up** — every caller's park is bounded by a ring that
//!   happens after its generation capture; the waits are *untimed*, so a
//!   lost wake-up shows up as a model deadlock.
//!
//! The PR 2 regression (generation bumped outside the gate mutex) is kept
//! alive as `wsm_check::fixtures::buggy_doorbell_harness`, which the
//! seeded-bug suite proves the checker reports as exactly that deadlock.
//!
//! Coverage counts use [`wsm_check::Report::considered`]: schedules executed
//! plus sleep-set-pruned branches (distinct schedules proven redundant).

use std::sync::Arc;
use wsm_check::sync::{AtomicUsize, Mutex, Ordering};
use wsm_check::{thread, Model};
use wsm_core::buffer::ParallelBuffer;
use wsm_core::doorbell::Doorbell;

struct Pending {
    value: usize,
    slot: Arc<Mutex<Option<usize>>>,
}

struct Front {
    buffer: ParallelBuffer<Pending>,
    doorbell: Doorbell,
    /// Threads currently inside `combine` — must never exceed 1.
    in_combine: AtomicUsize,
}

impl Front {
    fn new(shards: usize) -> Front {
        Front {
            // Tiny ring so wrap-around is reachable in a few steps.
            buffer: ParallelBuffer::with_ring_capacity(shards, 2),
            doorbell: Doorbell::new(),
            in_combine: AtomicUsize::new(0),
        }
    }

    /// Mirror of `ConcurrentMap::combine`: flush everything buffered and
    /// deliver each operation's "result" to its caller's slot.  Returns the
    /// number of operations drained, as the production combine does.
    fn combine(&self) -> usize {
        let entered = self.in_combine.fetch_add(1, Ordering::SeqCst);
        assert_eq!(entered, 0, "two combiners active at once");
        let (pending, _cost) = self.buffer.flush();
        let drained = pending.len();
        for p in pending {
            *p.slot.lock() = Some(p.value + 1);
        }
        self.in_combine.fetch_sub(1, Ordering::SeqCst);
        drained
    }

    /// Mirror of `ConcurrentMap::call`, including both of its yields: the
    /// fruitless-combine yield inside the activation (a producer is
    /// mid-publish; donate the CPU) and the spin-yield at the bottom of the
    /// retry loop.  The yields are load-bearing under the model: without
    /// them the demonic scheduler can starve a mid-publish producer while
    /// the combiner respins forever — a livelock the real scheduler's
    /// fairness forbids.  The checker's CHESS-style yield fairness makes
    /// each yield mean exactly "everyone runnable gets a turn first", as
    /// the OS does.  The doorbell park is untimed: if the ring protocol
    /// ever loses a wake-up, the model reports a deadlock.
    fn call(&self, shard: usize, value: usize) -> usize {
        let slot = Arc::new(Mutex::new(None));
        self.buffer.push(
            shard,
            Pending {
                value,
                slot: Arc::clone(&slot),
            },
        );
        loop {
            let seen = self.doorbell.current();
            let runs = self.buffer.activate(
                || true,
                || {
                    let drained = self.combine();
                    let more = !self.buffer.is_empty();
                    if more && drained == 0 {
                        thread::yield_now();
                    }
                    more
                },
            );
            if runs > 0 {
                self.doorbell.ring();
            }
            if let Some(r) = slot.lock().take() {
                return r;
            }
            self.doorbell.wait_past(seen);
            thread::yield_now();
        }
    }
}

/// Two callers, two operations each: the full election/combine/ring/park
/// protocol with results delivered exactly once, including back-to-back
/// calls where the second call races the previous cycle's hand-off.
#[test]
fn doorbell_combiner_no_missed_wakeup() {
    let r = Model::with_bound(3)
        .check(|| {
            let front = Arc::new(Front::new(2));
            let t = {
                let front = Arc::clone(&front);
                thread::spawn(move || {
                    assert_eq!(front.call(1, 10), 11);
                    assert_eq!(front.call(1, 12), 13);
                })
            };
            assert_eq!(front.call(0, 20), 21);
            assert_eq!(front.call(0, 22), 23);
            t.join().unwrap();
            assert!(front.buffer.is_empty());
        })
        .assert_pass(1_000);
    println!(
        "doorbell bound 3: {} schedules + {} pruned = {} considered, {} bound hits",
        r.schedules,
        r.pruned,
        r.considered(),
        r.bound_hits
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}

/// Three callers sharing one buffer shard maximises election contention:
/// every caller races the same activation try-lock and the same doorbell.
#[test]
fn doorbell_three_callers_single_combiner() {
    let r = Model::with_bound(3)
        .check(|| {
            let front = Arc::new(Front::new(1));
            let spawned: Vec<_> = (0..2)
                .map(|i| {
                    let front = Arc::clone(&front);
                    thread::spawn(move || {
                        assert_eq!(front.call(0, 10 * (i + 1)), 10 * (i + 1) + 1);
                    })
                })
                .collect();
            assert_eq!(front.call(0, 30), 31);
            for t in spawned {
                t.join().unwrap();
            }
        })
        .assert_pass(1_000);
    println!(
        "doorbell 3 callers bound 3: {} schedules + {} pruned = {} considered",
        r.schedules,
        r.pruned,
        r.considered()
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}

/// The bare doorbell pair protocol, exhaustively (no preemption bound): a
/// waiter that captures-then-parks can never sleep through the ring.
#[test]
fn doorbell_bare_pair_exhaustive_unbounded() {
    let r = Model::unbounded()
        .check(|| {
            let bell = Arc::new(Doorbell::new());
            let flag = Arc::new(AtomicUsize::new(0));
            let waiter = {
                let (bell, flag) = (Arc::clone(&bell), Arc::clone(&flag));
                thread::spawn(move || loop {
                    let seen = bell.current();
                    if flag.load(Ordering::SeqCst) == 1 {
                        return;
                    }
                    bell.wait_past(seen);
                })
            };
            flag.store(1, Ordering::SeqCst);
            bell.ring();
            waiter.join().unwrap();
        })
        .assert_pass(4);
    println!(
        "doorbell bare pair unbounded: {} schedules, {} pruned",
        r.schedules, r.pruned
    );
}
