//! Fixture: trips R1 `unsafe-outside-pool` when presented as a file under
//! `crates/core/`.  The doc-comment and string occurrences of the keyword
//! below must NOT trip it — only the real code site does.

/// This doc comment says unsafe and must be masked out.
pub fn sneaky(p: *const u8) -> u8 {
    let s = "unsafe in a string literal is not code";
    let _ = s;
    unsafe { *p }
}
