//! Fixture: R3 `unjustified-ordering`.  One bare Relaxed site (must trip),
//! one justified site (must not), one multi-line call whose justification
//! sits above the statement (must not), and a SeqCst site (exempt).

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bare(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed)
}

pub fn justified(c: &AtomicUsize) -> usize {
    // ord: Relaxed — fixture justification; advisory counter.
    c.load(Ordering::Relaxed)
}

pub fn justified_multiline(c: &AtomicUsize) {
    // ord: Relaxed — fixture justification spanning a multi-line call;
    // the marker is above the statement, not within 3 lines of the site.
    let _ = c.compare_exchange(
        0,
        1,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
}

pub fn seqcst_needs_nothing(c: &AtomicUsize) -> usize {
    c.load(Ordering::SeqCst)
}
