//! Fixture: R4 `sleep-as-sync`.  A bare thread::sleep (must trip) and an
//! annotated one (must not).  `Sleep` the type name and `sleepers` the
//! method name must not trip the rule.

pub struct Sleep;

pub fn sleepers() -> usize {
    0
}

pub fn bad_wait() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}

pub fn measured_backoff() {
    // lint: allow(thread_sleep) — fixture: bounded nap, re-polled condition.
    std::thread::sleep(std::time::Duration::from_micros(100));
}
