//! Fixture: trips R2 `missing-forbid-header` when presented as a crate root
//! (`crates/<x>/src/lib.rs`).  Mentioning #![forbid(unsafe_code)] in a
//! comment — as this line just did — must not satisfy the rule: only the
//! real inner attribute counts.

pub fn nothing() {}
