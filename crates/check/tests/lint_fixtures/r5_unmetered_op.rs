//! Fixture: R5 `unmetered-op`, presented as a file under `crates/twothree/`.
//! A `Tree23` impl with: a pub method that never reaches the metering layer
//! (must trip), a directly metered one, one metered via a sibling, one
//! metered via `pass()`, an annotated exemption, and a private unmetered
//! helper (exempt: only pub methods are law).

pub struct Tree23;

impl Tree23 {
    pub fn unmetered_search(&self) -> usize {
        self.raw_walk()
    }

    pub fn metered_search(&self) -> usize {
        touch(1);
        self.raw_walk()
    }

    pub fn via_sibling(&self) -> usize {
        self.metered_search()
    }

    pub fn via_pass(&self) -> usize {
        pass();
        self.raw_walk()
    }

    // lint: allow(unmetered) — fixture: O(1) accessor, no nodes touched.
    pub fn cheap_accessor(&self) -> usize {
        0
    }

    fn raw_walk(&self) -> usize {
        42
    }
}

fn touch(_n: u64) {}
fn pass() {}
