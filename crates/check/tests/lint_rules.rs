//! Exercises every `wsm-lint` rule against the fixtures in
//! `tests/lint_fixtures/` (each must trip exactly its rule, and only at the
//! real code sites — not in comments, strings or annotated exemptions), and
//! then runs the whole rule set over the real repository tree, which must be
//! clean.  The clean-tree test is what makes the CI lint step meaningful:
//! if a rule regresses into false positives, this suite catches it before
//! the lint gate starts failing honest code.

use std::path::{Path, PathBuf};
use wsm_check::lint::{self, SourceFile, Violation};

/// Presents fixture text to the linter under a chosen repo-relative path
/// (rule applicability is path-keyed: crate, lib.rs, twothree, ...).
fn lint_as(path: &str, text: &str) -> Vec<Violation> {
    let files = vec![SourceFile {
        path: PathBuf::from(path),
        text: text.to_string(),
    }];
    lint::run(&files)
}

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn r1_unsafe_trips_outside_pool_only_at_code_sites() {
    let text = include_str!("lint_fixtures/r1_unsafe_outside_pool.rs");
    let v = lint_as("crates/core/src/bad.rs", text);
    assert_eq!(rules_of(&v), ["unsafe-outside-pool"], "got: {v:?}");
    // Exactly the one code site — the doc comment and string literal
    // occurrences of the keyword are masked out.
    assert_eq!(v[0].line, 9, "got: {v:?}");
    // The same file under crates/pool/ is legal.
    let v = lint_as("crates/pool/src/ok.rs", text);
    assert!(v.is_empty(), "pool may hold unsafe, got: {v:?}");
}

#[test]
fn r2_missing_forbid_header_trips_only_crate_roots() {
    let text = include_str!("lint_fixtures/r2_missing_forbid.rs");
    let v = lint_as("crates/demo/src/lib.rs", text);
    assert_eq!(rules_of(&v), ["missing-forbid-header"], "got: {v:?}");
    // Non-root modules carry no header duty.
    let v = lint_as("crates/demo/src/util.rs", text);
    assert!(v.is_empty(), "non-root module needs no header, got: {v:?}");
    // crates/pool is the sanctioned unsafe holder; no header duty either.
    let v = lint_as("crates/pool/src/lib.rs", text);
    assert!(v.is_empty(), "pool lib.rs needs no header, got: {v:?}");
    // A real attribute satisfies the rule.
    let fixed = format!("#![forbid(unsafe_code)]\n{text}");
    let v = lint_as("crates/demo/src/lib.rs", &fixed);
    assert!(v.is_empty(), "header should satisfy R2, got: {v:?}");
}

#[test]
fn r3_ordering_sites_need_ord_justification() {
    let text = include_str!("lint_fixtures/r3_unjustified_ordering.rs");
    let v = lint_as("crates/sync/src/bad.rs", text);
    // Only the bare site trips: the single-line justification, the
    // above-the-statement justification on a multi-line call, and the
    // SeqCst site are all fine.
    assert_eq!(rules_of(&v), ["unjustified-ordering"], "got: {v:?}");
    assert_eq!(v[0].line, 8, "got: {v:?}");
    // The concurrency law only binds the concurrent crates.
    let v = lint_as("crates/workloads/src/bad.rs", text);
    assert!(v.is_empty(), "R3 binds sync/pool/core only, got: {v:?}");
}

#[test]
fn r4_sleep_needs_allow_annotation() {
    let text = include_str!("lint_fixtures/r4_sleep_as_sync.rs");
    let v = lint_as("crates/core/src/bad.rs", text);
    assert_eq!(rules_of(&v), ["sleep-as-sync"], "got: {v:?}");
    // `bad_wait`'s sleep, not the annotated backoff, the `Sleep` type or
    // the `sleepers` method.
    assert_eq!(v[0].line, 12, "got: {v:?}");
}

#[test]
fn r5_unmetered_public_map_ops_trip() {
    let text = include_str!("lint_fixtures/r5_unmetered_op.rs");
    let v = lint_as("crates/twothree/src/bad.rs", text);
    assert_eq!(rules_of(&v), ["unmetered-op"], "got: {v:?}");
    assert!(
        v[0].message.contains("unmetered_search"),
        "the bare pub method is the one violation (direct touch, sibling \
         call, pass(), the annotation and the private helper are all \
         exempt), got: {v:?}"
    );
    // The metering law binds crates/twothree only.
    let v = lint_as("crates/core/src/bad.rs", text);
    assert!(v.is_empty(), "R5 binds crates/twothree only, got: {v:?}");
}

/// The real repository tree is lint-clean.  This is the library-level twin
/// of the CI `wsm-lint .` gate — running it under `cargo test` means a rule
/// change and a law violation both fail the suite, with the violation list
/// in the assertion message.
#[test]
fn real_repo_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/check has a workspace root two levels up")
        .to_path_buf();
    let files = lint::collect_repo_files(&root).expect("walk workspace crates/");
    assert!(
        files.len() > 30,
        "expected the real tree (found {} files — wrong root?)",
        files.len()
    );
    let violations = lint::run(&files);
    assert!(
        violations.is_empty(),
        "repo tree must be lint-clean:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
