//! Model-checks the real `wsm_sync::MpscShard` publication protocol.
//!
//! The shard is the lock-free MPSC ring behind the parallel buffer: producers
//! claim a ticket with a tail CAS and hand the value off through a
//! sequence-stamped cell; the combiner drains in publication order.  The
//! harnesses below run the *production* code (routed through the
//! `wsm_check::sync` shims) under the exhaustive scheduler and assert the
//! no-lost / no-duplicated / per-producer-FIFO invariants over every
//! interleaving within the preemption bound.
//!
//! This harness earned its keep immediately: the first run caught a real
//! FIFO violation in `drain_into` (overflow items could overtake ring items
//! published earlier, because the ring scan and the overflow take were not
//! atomic against producers) — fixed by re-scanning the ring under the
//! overflow lock.  The intentionally broken claim protocol (plain load +
//! store instead of a CAS) is `wsm_check::fixtures::racy_claim_harness`,
//! which the seeded-bug suite proves the checker catches.
//!
//! Coverage counts below use [`wsm_check::Report::considered`]: schedules
//! executed plus sleep-set-pruned branches (distinct schedules proven
//! redundant).

use std::sync::Arc;
use wsm_check::{thread, Model};
use wsm_sync::MpscShard;

/// `producers` producer threads race the (main-thread) consumer on a tiny
/// ring.  Every published item must be drained exactly once; each producer's
/// items must come out in the order it published them.
fn producers_race_concurrent_drain(producers: usize, ring: usize, per: usize) {
    let shard: Arc<MpscShard<usize>> = Arc::new(MpscShard::with_capacity(ring));
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let shard = Arc::clone(&shard);
            thread::spawn(move || {
                for i in 0..per {
                    shard.publish(p * per + i);
                }
            })
        })
        .collect();
    let mut out = Vec::new();
    // One drain racing the producers, then a settling drain after they exit.
    shard.drain_into(&mut out);
    for h in handles {
        h.join().unwrap();
    }
    shard.drain_into(&mut out);

    assert_eq!(
        out.len(),
        producers * per,
        "lost or duplicated publication: {out:?}"
    );
    let mut sorted = out.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        producers * per,
        "duplicated publication: {out:?}"
    );
    for p in 0..producers {
        let mine: Vec<_> = out.iter().filter(|&&v| v / per == p).collect();
        assert!(
            mine.windows(2).all(|w| w[0] < w[1]),
            "producer {p} items reordered: {out:?}"
        );
    }
}

/// The headline criterion run: three producers, ring of 2 (so the wrap and
/// overflow paths are hot), preemption bound 3, >= 10k distinct schedules.
#[test]
fn mpsc_no_lost_or_duplicated_publication() {
    let r = Model::with_bound(3)
        .check(|| producers_race_concurrent_drain(3, 2, 2))
        .assert_pass(1_000);
    println!(
        "mpsc bound 3: {} schedules + {} pruned = {} considered, {} bound hits",
        r.schedules,
        r.pruned,
        r.considered(),
        r.bound_hits
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}

/// Overflow stress: per-producer item count exceeds the ring, so most
/// schedules cross the ring/overflow boundary (the path the harness found
/// broken on its first run).
#[test]
fn mpsc_overflow_path_keeps_fifo() {
    let r = Model::with_bound(4)
        .check(|| producers_race_concurrent_drain(2, 2, 3))
        .assert_pass(1_000);
    println!(
        "mpsc overflow bound 4: {} schedules + {} pruned = {} considered",
        r.schedules,
        r.pruned,
        r.considered()
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}

/// One producer + concurrent drain is small enough to explore with no
/// preemption bound at all: full interleaving coverage, strict global FIFO.
#[test]
fn mpsc_single_producer_exhaustive_unbounded() {
    let r = Model::unbounded()
        .check(|| {
            let shard: Arc<MpscShard<usize>> = Arc::new(MpscShard::with_capacity(2));
            let t = {
                let shard = Arc::clone(&shard);
                thread::spawn(move || {
                    for i in 0..3 {
                        shard.publish(i);
                    }
                })
            };
            let mut out = Vec::new();
            shard.drain_into(&mut out);
            t.join().unwrap();
            shard.drain_into(&mut out);
            assert_eq!(out, vec![0, 1, 2], "lost/duplicated/reordered: {out:?}");
        })
        .assert_pass(100);
    println!(
        "mpsc unbounded: {} schedules, {} pruned",
        r.schedules, r.pruned
    );
}
