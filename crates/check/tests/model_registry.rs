//! Model-checks the real pool sleep/wake handshakes:
//! `wsm_pool::handshake::{Latch, WakeGate}` as used by the registry.
//!
//! Two protocols, both run on the production types routed through the
//! `wsm_check::sync` shims:
//!
//! * **client handshake** — a worker completes a job (`Latch::set`) and
//!   rings the registry's client gate; the client parks *untimed* in
//!   `WakeGate::wait_until` until the latch probes set.  The wait has no
//!   timeout backstop, so the SeqCst Dekker between `Latch::set` and the
//!   gate's `parked` counter is load-bearing: any missed wakeup shows up as
//!   a model deadlock.
//!
//! * **worker sleep / termination** — the registry main loop's idle path:
//!   `WakeGate::wait_brief` with a "no pending work and not terminating"
//!   predicate, raced against a client that injects work and then requests
//!   termination.  These waits are *timed* (the registry's liveness
//!   backstop), so the model's timeout budget explores spurious/timeout
//!   wakeups; the invariants are that injected work is never lost and the
//!   worker always terminates.
//!
//! Coverage counts use [`wsm_check::Report::considered`]: schedules executed
//! plus sleep-set-pruned branches (distinct schedules proven redundant).

use std::sync::Arc;
use std::time::Duration;
use wsm_check::sync::{AtomicBool, AtomicUsize, Ordering};
use wsm_check::{thread, Model};
use wsm_pool::handshake::{Latch, WakeGate};

/// Four workers finish jobs and ring the shared client gate; the client
/// parks untimed until every latch is set.  A lost notification would
/// deadlock the client — the exact failure mode `WakeGate`'s SeqCst
/// park-counter Dekker exists to prevent.
#[test]
fn registry_client_handshake_never_misses_a_wakeup() {
    let r = Model::with_bound(4)
        .check(|| {
            let gate = Arc::new(WakeGate::new());
            let latches: Arc<Vec<Latch>> = Arc::new((0..4).map(|_| Latch::new()).collect());
            let workers: Vec<_> = (0..4)
                .map(|i| {
                    let (gate, latches) = (Arc::clone(&gate), Arc::clone(&latches));
                    thread::spawn(move || {
                        latches[i].set();
                        gate.notify();
                    })
                })
                .collect();
            gate.wait_until(|| latches.iter().all(Latch::probe));
            for w in workers {
                w.join().unwrap();
            }
        })
        .assert_pass(1_000);
    println!(
        "registry client handshake bound 4: {} schedules + {} pruned = {} considered",
        r.schedules,
        r.pruned,
        r.considered()
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}

/// The registry main loop's idle path: a worker drains a pending-work
/// counter, napping through `wait_brief` when idle, while the client
/// injects three jobs and then requests termination (terminate flag is
/// Relaxed + notify, exactly as `Registry::request_terminate`).  No
/// injected job may be lost and the worker must always exit.
#[test]
fn registry_sleep_termination_loses_no_work() {
    let r = Model::with_bound(4)
        .check(|| {
            let gate = Arc::new(WakeGate::new());
            let pending = Arc::new(AtomicUsize::new(0));
            let term = Arc::new(AtomicBool::new(false));
            let worker = {
                let (gate, pending, term) =
                    (Arc::clone(&gate), Arc::clone(&pending), Arc::clone(&term));
                thread::spawn(move || {
                    let mut processed = 0usize;
                    loop {
                        if pending.load(Ordering::SeqCst) > 0 {
                            pending.fetch_sub(1, Ordering::SeqCst);
                            processed += 1;
                        } else if term.load(Ordering::Relaxed) {
                            // Drain-on-terminate, as `Registry::main_loop`
                            // does: the first version of this harness (and
                            // of the production loop) returned here
                            // directly, and the checker found the lost-work
                            // window — work injected between the pending
                            // check above and the terminate store.
                            while pending.load(Ordering::SeqCst) > 0 {
                                pending.fetch_sub(1, Ordering::SeqCst);
                                processed += 1;
                            }
                            return processed;
                        } else {
                            gate.wait_brief(
                                || {
                                    pending.load(Ordering::SeqCst) == 0
                                        && !term.load(Ordering::Relaxed)
                                },
                                Duration::from_millis(10),
                            );
                        }
                    }
                })
            };
            // A separate injector races the worker's sleep decisions; the
            // main thread requests termination only after the injector is
            // done (the registry's contract: no injections after
            // request_terminate).  Each transition rings the gate, as the
            // registry's inject/request_terminate do.
            let injector = {
                let (gate, pending) = (Arc::clone(&gate), Arc::clone(&pending));
                thread::spawn(move || {
                    for _ in 0..3 {
                        pending.fetch_add(1, Ordering::SeqCst);
                        gate.notify();
                    }
                })
            };
            injector.join().unwrap();
            term.store(true, Ordering::Relaxed);
            gate.notify();
            assert_eq!(worker.join().unwrap(), 3, "injected work lost");
        })
        .assert_pass(1_000);
    println!(
        "registry sleep/termination bound 4: {} schedules + {} pruned = {} considered",
        r.schedules,
        r.pruned,
        r.considered()
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}

/// The bare latch/gate pair, exhaustively (no preemption bound): set + ring
/// versus probe + park can never sleep through the set.
#[test]
fn registry_bare_handshake_exhaustive_unbounded() {
    let r = Model::unbounded()
        .check(|| {
            let gate = Arc::new(WakeGate::new());
            let latch = Arc::new(Latch::new());
            let worker = {
                let (gate, latch) = (Arc::clone(&gate), Arc::clone(&latch));
                thread::spawn(move || {
                    latch.set();
                    gate.notify();
                })
            };
            gate.wait_until(|| latch.probe());
            worker.join().unwrap();
        })
        .assert_pass(2);
    println!(
        "registry bare handshake unbounded: {} schedules, {} pruned",
        r.schedules, r.pruned
    );
}
