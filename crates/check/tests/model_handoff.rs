//! Model-checks the slot-free result hand-off: `wsm_core::handoff::ResultCell`
//! and the `WSM_HANDOFF=cell` waiter loop of `ConcurrentMap` (and of the
//! `wsm_shard` router, whose `call_batch` waits run the same loop per cell).
//!
//! The harness mirrors the cell-mode `ConcurrentMap::call` loop exactly:
//! deposit the op with its own sequence-stamped cell, then alternate between
//! attempting the combiner activation and probing the cell — never parking
//! on the doorbell.  Invariants over every interleaving in the bound:
//!
//! * **single combiner** — the activation still admits one combiner at a
//!   time (entry counter);
//! * **exactly-once delivery** — every caller's `try_take` yields its result
//!   exactly once, for every caller, under pure spinning;
//! * **no torn hand-off** — a stamp observed `FILLED` (Acquire) implies the
//!   payload written before the `Release` store is present: `try_take` after
//!   a positive `is_filled` can never see `None`.  Checked under sequential
//!   consistency *and* under the TSO store-buffer mode, where a broken
//!   stamp ordering (e.g. Relaxed) would surface as a stamp-before-payload
//!   reordering.
//!
//! Livelock safety: the loop's yields are load-bearing — the checker's
//! CHESS-style yield fairness makes each yield mean "everyone runnable runs
//! first", so a protocol that could spin forever without the combiner making
//! progress would show up as a fairness violation, as in `model_doorbell.rs`.
//!
//! The second half of the file covers the **waker hand-off**
//! (`WSM_HANDOFF=waker`, the `wsm-svc` async path): an awaiting task
//! registers a [`std::task::Waker`] with `ResultCell::set_waker`, re-probes
//! (mandatory — a fill racing the registration has already taken, or never
//! saw, the waker), and then *parks* until woken.  The park is modelled as a
//! spin on the waker's flag: a protocol that could lose the wake would leave
//! the task spinning with nobody left to set the flag, which the checker's
//! yield fairness reports as livelock.  Invariant: **no lost wake** — in
//! every interleaving (including TSO store-buffer mode), either the re-probe
//! observes `FILLED`, or `fill`'s waker take happens after the registration
//! and the wake arrives.
//!
//! Orderings covered here are catalogued in `docs/ORDERINGS.md` (wsm-core,
//! `handoff.rs`).

use std::sync::Arc;
use std::task::Waker;
use wsm_check::sync::{AtomicUsize, Ordering};
use wsm_check::{thread, Model};
use wsm_core::buffer::ParallelBuffer;
use wsm_core::handoff::ResultCell;

/// Test waker: raises a (model-checked) flag the parked "task" spins on.
struct FlagWaker(Arc<AtomicUsize>);

impl std::task::Wake for FlagWaker {
    fn wake(self: Arc<Self>) {
        self.0.store(1, Ordering::SeqCst);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.store(1, Ordering::SeqCst);
    }
}

struct Pending {
    value: usize,
    slot: Arc<ResultCell<usize>>,
}

struct Front {
    buffer: ParallelBuffer<Pending>,
    /// Threads currently inside `combine` — must never exceed 1.
    in_combine: AtomicUsize,
    /// Keeps every cell alive for the whole model iteration.  The checker's
    /// shim atomics key their model state by heap address and register it
    /// lazily (`const fn new` cannot touch the registry), so a cell freshly
    /// allocated at a *recycled* address would inherit the dropped cell's
    /// stale stamp state — a model artifact, not a protocol behaviour (a real
    /// `AtomicUsize::new(0)` reinitialises the memory).  Pinning the Arcs
    /// here makes every cell's address unique within one explored schedule.
    /// Never contended: the model scheduler runs exactly one thread at a
    /// time, so a plain std mutex adds no schedule points.
    keep: std::sync::Mutex<Vec<Arc<ResultCell<usize>>>>,
}

impl Front {
    fn new(shards: usize) -> Front {
        Front {
            // Tiny ring so wrap-around is reachable in a few steps.
            buffer: ParallelBuffer::with_ring_capacity(shards, 2),
            in_combine: AtomicUsize::new(0),
            keep: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Mirror of `ConcurrentMap::combine` in cell mode: flush everything and
    /// fill each caller's cell (payload first, then the Release stamp —
    /// that is `ResultCell::fill`).
    fn combine(&self) -> usize {
        let entered = self.in_combine.fetch_add(1, Ordering::SeqCst);
        assert_eq!(entered, 0, "two combiners active at once");
        let (pending, _cost) = self.buffer.flush();
        let drained = pending.len();
        for p in pending {
            p.slot.fill(p.value + 1);
        }
        self.in_combine.fetch_sub(1, Ordering::SeqCst);
        drained
    }

    /// One non-blocking combiner-election attempt (`ConcurrentMap::pump`).
    fn pump(&self) {
        self.buffer.activate(
            || true,
            || {
                let drained = self.combine();
                let more = !self.buffer.is_empty();
                if more && drained == 0 {
                    thread::yield_now();
                }
                more
            },
        );
    }

    /// Mirror of the `wsm-svc` `BatchCall::poll` protocol for one op:
    /// harvest → register waker → re-probe → pump → harvest → park (spin on
    /// the waker flag) when the buffer is drained, self-wake (yield + retry)
    /// when ops are still buffered.  A lost wake would strand the park loop
    /// and trip the checker's yield fairness.
    fn call_async(&self, shard: usize, value: usize) -> usize {
        let slot = Arc::new(ResultCell::new());
        self.keep.lock().unwrap().push(Arc::clone(&slot));
        let woken = Arc::new(AtomicUsize::new(0));
        let waker = Waker::from(Arc::new(FlagWaker(Arc::clone(&woken))));
        self.buffer.push(
            shard,
            Pending {
                value,
                slot: Arc::clone(&slot),
            },
        );
        loop {
            if let Some(v) = slot.try_take() {
                return v;
            }
            slot.set_waker(&waker);
            // Mandatory re-probe: a fill that raced the registration has
            // already taken (or never saw) the waker.
            if let Some(v) = slot.try_take() {
                return v;
            }
            self.pump();
            if let Some(v) = slot.try_take() {
                return v;
            }
            if self.buffer.is_empty() {
                // Our op is in an in-flight batch: park until `fill` wakes
                // us.  If the wake could be lost, this spin never ends.
                while woken.swap(0, Ordering::SeqCst) == 0 {
                    thread::yield_now();
                }
            } else {
                // Self-wake path: ops still buffered, retry the election.
                thread::yield_now();
            }
        }
    }

    /// Mirror of the cell-mode `ConcurrentMap::call` loop: attempt the
    /// activation, probe the own cell, yield, repeat — no doorbell, no park.
    /// A waiter whose op is still buffered eventually wins the activation
    /// itself, so progress never depends on being woken.
    fn call(&self, shard: usize, value: usize) -> usize {
        let slot = Arc::new(ResultCell::new());
        self.keep.lock().unwrap().push(Arc::clone(&slot));
        self.buffer.push(
            shard,
            Pending {
                value,
                slot: Arc::clone(&slot),
            },
        );
        loop {
            self.buffer.activate(
                || true,
                || {
                    let drained = self.combine();
                    let more = !self.buffer.is_empty();
                    if more && drained == 0 {
                        thread::yield_now();
                    }
                    more
                },
            );
            // The no-torn-hand-off invariant: a visible stamp means the
            // payload is already there.
            if slot.is_filled() {
                let r = slot.try_take();
                assert!(r.is_some(), "FILLED stamp with absent payload");
                return r.expect("checked above");
            }
            thread::yield_now();
        }
    }
}

/// Two callers, two operations each, sharing the election: full cell-mode
/// protocol with exactly-once delivery and no parking anywhere.
#[test]
fn cell_handoff_exactly_once_no_parks() {
    let r = Model::with_bound(3)
        .check(|| {
            let front = Arc::new(Front::new(2));
            let t = {
                let front = Arc::clone(&front);
                thread::spawn(move || {
                    assert_eq!(front.call(1, 10), 11);
                    assert_eq!(front.call(1, 12), 13);
                })
            };
            assert_eq!(front.call(0, 20), 21);
            assert_eq!(front.call(0, 22), 23);
            t.join().unwrap();
            assert!(front.buffer.is_empty());
        })
        .assert_pass(1_000);
    println!(
        "cell hand-off bound 3: {} schedules + {} pruned = {} considered, {} bound hits",
        r.schedules,
        r.pruned,
        r.considered(),
        r.bound_hits
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}

/// Three callers on one buffer shard: maximal election contention, every
/// caller both spins on its own cell and races the same activation.
#[test]
fn cell_handoff_three_callers_single_combiner() {
    let r = Model::with_bound(3)
        .check(|| {
            let front = Arc::new(Front::new(1));
            let spawned: Vec<_> = (0..2)
                .map(|i| {
                    let front = Arc::clone(&front);
                    thread::spawn(move || {
                        assert_eq!(front.call(0, 10 * (i + 1)), 10 * (i + 1) + 1);
                    })
                })
                .collect();
            assert_eq!(front.call(0, 30), 31);
            for t in spawned {
                t.join().unwrap();
            }
        })
        .assert_pass(1_000);
    println!(
        "cell hand-off 3 callers bound 3: {} schedules + {} pruned = {} considered",
        r.schedules,
        r.pruned,
        r.considered()
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}

/// The bare fill/take pair, exhaustively and with no preemption bound: the
/// Release stamp publishes the payload, so a spinning taker always receives
/// the value exactly once.
#[test]
fn cell_bare_pair_exhaustive_unbounded() {
    let r = Model::unbounded()
        .check(|| {
            let cell = Arc::new(ResultCell::new());
            let filler = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.fill(42usize))
            };
            loop {
                if cell.is_filled() {
                    assert_eq!(cell.try_take(), Some(42), "torn hand-off");
                    break;
                }
                thread::yield_now();
            }
            assert_eq!(cell.try_take(), None, "delivered twice");
            filler.join().unwrap();
        })
        .assert_pass(2);
    println!(
        "cell bare pair unbounded: {} schedules, {} pruned",
        r.schedules, r.pruned
    );
}

/// The same bare pair under the TSO store-buffer semantics: the payload
/// store and the Release stamp may both sit in the filler's store buffer,
/// but must drain in order — an Acquire load seeing the stamp implies the
/// payload already hit memory.  (Weakening the stamp to a plain buffered
/// store with the payload behind it is exactly the bug this would catch.)
#[test]
fn cell_bare_pair_tso_store_buffer() {
    let r = Model::tso_with_bound(2)
        .check(|| {
            let cell = Arc::new(ResultCell::new());
            let filler = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.fill(7usize))
            };
            loop {
                if cell.is_filled() {
                    assert_eq!(cell.try_take(), Some(7), "torn hand-off under TSO");
                    break;
                }
                thread::yield_now();
            }
            filler.join().unwrap();
        })
        .assert_pass(2);
    println!(
        "cell bare pair TSO bound 2: {} schedules, {} pruned",
        r.schedules, r.pruned
    );
}

/// The waker registration race, bare: one filler, one awaiting task running
/// the register → re-probe → park protocol.  Every interleaving of
/// `set_waker`'s (store waker, re-probe) against `fill`'s (payload, Release
/// stamp, take waker, wake) must deliver exactly once — a lost wake strands
/// the park loop and trips yield fairness.
#[test]
fn waker_registration_never_loses_a_wake() {
    let r = Model::with_bound(3)
        .check(|| {
            let cell = Arc::new(ResultCell::new());
            let woken = Arc::new(AtomicUsize::new(0));
            let waker = Waker::from(Arc::new(FlagWaker(Arc::clone(&woken))));
            let filler = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.fill(42usize))
            };
            let got = loop {
                if let Some(v) = cell.try_take() {
                    break v;
                }
                cell.set_waker(&waker);
                if let Some(v) = cell.try_take() {
                    break v;
                }
                // Park: the fill MUST wake us from here.
                while woken.swap(0, Ordering::SeqCst) == 0 {
                    thread::yield_now();
                }
            };
            assert_eq!(got, 42);
            assert_eq!(cell.try_take(), None, "delivered twice");
            filler.join().unwrap();
        })
        .assert_pass(2);
    println!(
        "waker bare pair bound 3: {} schedules + {} pruned = {} considered",
        r.schedules,
        r.pruned,
        r.considered()
    );
}

/// The same bare registration race under TSO store-buffer semantics: the
/// payload and stamp stores may sit in the filler's store buffer, but the
/// waker mutex on both sides orders registration against the take, so the
/// wake (or the re-probed stamp) still cannot be lost.
#[test]
fn waker_registration_tso_store_buffer() {
    let r = Model::tso_with_bound(2)
        .check(|| {
            let cell = Arc::new(ResultCell::new());
            let woken = Arc::new(AtomicUsize::new(0));
            let waker = Waker::from(Arc::new(FlagWaker(Arc::clone(&woken))));
            let filler = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.fill(9usize))
            };
            let got = loop {
                if let Some(v) = cell.try_take() {
                    break v;
                }
                cell.set_waker(&waker);
                if let Some(v) = cell.try_take() {
                    break v;
                }
                while woken.swap(0, Ordering::SeqCst) == 0 {
                    thread::yield_now();
                }
            };
            assert_eq!(got, 9, "torn waker hand-off under TSO");
            filler.join().unwrap();
        })
        .assert_pass(2);
    println!(
        "waker bare pair TSO bound 2: {} schedules + {} pruned = {} considered",
        r.schedules,
        r.pruned,
        r.considered()
    );
}

/// The full async front protocol under election contention: two tasks share
/// the combiner election, each parking on its waker whenever its op is in an
/// in-flight batch.  Exactly-once delivery, single combiner, no lost wake —
/// across at least 10k explored schedules.
#[test]
fn waker_front_exactly_once_under_election() {
    let r = Model::with_bound(3)
        .check(|| {
            let front = Arc::new(Front::new(2));
            let t = {
                let front = Arc::clone(&front);
                thread::spawn(move || {
                    assert_eq!(front.call_async(1, 10), 11);
                })
            };
            assert_eq!(front.call_async(0, 20), 21);
            assert_eq!(front.call_async(0, 22), 23);
            t.join().unwrap();
            assert!(front.buffer.is_empty());
        })
        .assert_pass(1_000);
    println!(
        "waker front bound 3: {} schedules + {} pruned = {} considered, {} bound hits",
        r.schedules,
        r.pruned,
        r.considered(),
        r.bound_hits
    );
    assert!(
        r.considered() >= 10_000,
        "expected >= 10k distinct schedules, considered {}",
        r.considered()
    );
}
