//! Synthetic workload generation.
//!
//! Every generator produces a sequence of [`wsm_model::MapOpKind`] operations
//! over `u64` keys, which the harness converts into the concrete operation
//! types of the map under test.  Patterns are chosen to exercise the
//! distribution-sensitivity of the working-set structures: the same number of
//! operations can have wildly different working-set bounds `W_L`.

use rand::prelude::*;
use wsm_model::MapOpKind;

/// Access-pattern families used throughout the experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// Every access picks a key uniformly at random (no locality; `W_L` is
    /// `Θ(N log n)`).
    Uniform,
    /// Zipfian accesses with the given exponent `s` (`s = 0` is uniform,
    /// `s ≈ 1` is classic web-like skew).
    Zipf(f64),
    /// Working-set locality: with probability `1 - miss_rate` the access picks
    /// one of the `window` most recently accessed keys, otherwise a uniform
    /// key.  Models temporal locality directly.
    WorkingSet {
        /// Size of the hot window of recently accessed keys.
        window: usize,
        /// Probability of leaving the window.
        miss_rate: f64,
    },
    /// A small hot set of `hot` keys receives `1 - miss_rate` of the accesses.
    HotSet {
        /// Number of hot keys.
        hot: usize,
        /// Probability of accessing a non-hot key.
        miss_rate: f64,
    },
    /// Repeatedly scan all keys in order (good for splay trees, bad for
    /// working-set structures relative to HotSet — every access has maximal
    /// recency).
    SequentialScan,
    /// Adversarial for working-set structures: always access the least
    /// recently used key, so every access has rank `n`.
    Adversarial,
    /// Multi-tenant skew: `tenants` interleaved Zipfian streams, each over
    /// its own contiguous block of the keyspace (tenant `t` owns block
    /// `[t·n/tenants, (t+1)·n/tenants)`), issuing accesses round-robin.
    /// Every tenant has a private hot set, so the merged stream has high
    /// aggregate skew but no *shared* hot keys — the workload a sharded
    /// front-end splits cleanly while a single combiner serialises it.
    MultiTenant {
        /// Number of interleaved tenant streams (at least 1).
        tenants: usize,
        /// Zipf exponent of each tenant's stream over its own block.
        s: f64,
    },
}

/// A complete workload description: a keyspace that is pre-inserted and then a
/// stream of accesses (with optional updates) over it.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of distinct keys pre-inserted before the access phase.
    pub keyspace: u64,
    /// Number of access operations to generate.
    pub operations: usize,
    /// Access pattern.
    pub pattern: Pattern,
    /// Fraction of accesses that are inserts/deletes instead of searches
    /// (half each).  `0.0` gives a read-only access phase.
    pub update_fraction: f64,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A read-only spec with the given pattern.
    pub fn read_only(keyspace: u64, operations: usize, pattern: Pattern, seed: u64) -> Self {
        WorkloadSpec {
            keyspace,
            operations,
            pattern,
            update_fraction: 0.0,
            seed,
        }
    }

    /// The pre-insertion phase: one insert per key, in key order.
    pub fn load_phase(&self) -> Vec<MapOpKind<u64>> {
        (0..self.keyspace).map(MapOpKind::Insert).collect()
    }

    /// The access phase.
    pub fn access_phase(&self) -> Vec<MapOpKind<u64>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.keyspace.max(1);
        let mut ops = Vec::with_capacity(self.operations);

        // State for patterns that need it.
        let zipf_table = match self.pattern {
            Pattern::Zipf(s) => Some(ZipfSampler::new(n, s)),
            _ => None,
        };
        // Per-tenant samplers: tenant `t` owns the contiguous key block
        // `[t·n/T, (t+1)·n/T)` (integer division spreads any remainder).
        let tenant_blocks: Vec<(u64, ZipfSampler)> = match self.pattern {
            Pattern::MultiTenant { tenants, s } => {
                let t = tenants.max(1) as u64;
                (0..t)
                    .map(|i| {
                        let start = i * n / t;
                        let end = (i + 1) * n / t;
                        (start, ZipfSampler::new((end - start).max(1), s))
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        let mut recent: Vec<u64> = Vec::new();
        let mut lru: std::collections::VecDeque<u64> = (0..n).collect();
        let mut scan_next = 0u64;
        let mut next_tenant = 0usize;

        for _ in 0..self.operations {
            let key = match self.pattern {
                Pattern::Uniform => rng.random_range(0..n),
                Pattern::Zipf(_) => zipf_table.as_ref().expect("built above").sample(&mut rng),
                Pattern::WorkingSet { window, miss_rate } => {
                    let hit = !recent.is_empty() && rng.random_range(0.0..1.0) >= miss_rate;
                    if hit {
                        let idx = rng.random_range(0..recent.len().min(window));
                        recent[recent.len() - 1 - idx]
                    } else {
                        rng.random_range(0..n)
                    }
                }
                Pattern::HotSet { hot, miss_rate } => {
                    if rng.random_range(0.0..1.0) < miss_rate {
                        rng.random_range(0..n)
                    } else {
                        rng.random_range(0..(hot as u64).min(n))
                    }
                }
                Pattern::SequentialScan => {
                    let k = scan_next;
                    scan_next = (scan_next + 1) % n;
                    k
                }
                Pattern::Adversarial => {
                    let k = lru.pop_front().unwrap_or(0);
                    lru.push_back(k);
                    k
                }
                Pattern::MultiTenant { .. } => {
                    let (start, sampler) = &tenant_blocks[next_tenant];
                    next_tenant = (next_tenant + 1) % tenant_blocks.len();
                    (start + sampler.sample(&mut rng)).min(n - 1)
                }
            };
            if matches!(self.pattern, Pattern::WorkingSet { .. }) {
                recent.push(key);
                if recent.len() > 4096 {
                    recent.drain(..2048);
                }
            }
            let op = if self.update_fraction > 0.0
                && rng.random_range(0.0..1.0) < self.update_fraction
            {
                if rng.random_bool(0.5) {
                    MapOpKind::Insert(key)
                } else {
                    MapOpKind::Delete(key)
                }
            } else {
                MapOpKind::Search(key)
            };
            ops.push(op);
        }
        ops
    }

    /// Load phase followed by access phase.
    pub fn full_sequence(&self) -> Vec<MapOpKind<u64>> {
        let mut ops = self.load_phase();
        ops.extend(self.access_phase());
        ops
    }
}

/// Zipfian sampler over `1..=n` mapped to keys `0..n`, built by inverse-CDF
/// table lookup (exact, O(n) setup, O(log n) per sample).
#[derive(Clone, Debug)]
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: u64, s: f64) -> Self {
        let n = n.max(1) as usize;
        let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        ZipfSampler { cdf: weights }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("no NaN in CDF"))
        {
            Ok(i) | Err(i) => (i.min(self.cdf.len() - 1)) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_model::working_set_bound;

    fn spec(pattern: Pattern) -> WorkloadSpec {
        WorkloadSpec::read_only(1 << 12, 1 << 14, pattern, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec(Pattern::Zipf(1.0)).full_sequence();
        let b = spec(Pattern::Zipf(1.0)).full_sequence();
        assert_eq!(a, b);
    }

    #[test]
    fn sizes_are_as_requested() {
        let s = spec(Pattern::Uniform);
        assert_eq!(s.load_phase().len(), 1 << 12);
        assert_eq!(s.access_phase().len(), 1 << 14);
        assert_eq!(s.full_sequence().len(), (1 << 12) + (1 << 14));
    }

    #[test]
    fn keys_stay_in_keyspace() {
        for pattern in [
            Pattern::Uniform,
            Pattern::Zipf(1.2),
            Pattern::WorkingSet {
                window: 64,
                miss_rate: 0.1,
            },
            Pattern::HotSet {
                hot: 8,
                miss_rate: 0.05,
            },
            Pattern::SequentialScan,
            Pattern::Adversarial,
            Pattern::MultiTenant { tenants: 4, s: 1.1 },
        ] {
            let ops = spec(pattern).access_phase();
            assert!(ops.iter().all(|op| *op.key() < (1 << 12)), "{pattern:?}");
        }
    }

    #[test]
    fn multi_tenant_interleaves_private_blocks() {
        let tenants = 4usize;
        let n = 1u64 << 12;
        let block = n / tenants as u64;
        let ops = spec(Pattern::MultiTenant { tenants, s: 1.1 }).access_phase();
        // Round-robin: op i belongs to tenant i % tenants and must stay in
        // that tenant's contiguous key block.
        for (i, op) in ops.iter().enumerate() {
            let t = (i % tenants) as u64;
            let key = *op.key();
            assert!(
                (t * block..(t + 1) * block).contains(&key),
                "op {i}: key {key} outside tenant {t}'s block"
            );
        }
        // Each tenant's stream is skewed: its block head is its hot key.
        let head_hits = ops
            .iter()
            .enumerate()
            .filter(|(i, op)| *op.key() == ((*i % tenants) as u64) * block)
            .count();
        assert!(
            head_hits * 8 > ops.len() / tenants,
            "tenant hot keys underrepresented: {head_hits}/{}",
            ops.len()
        );
    }

    #[test]
    fn multi_tenant_locality_beats_uniform() {
        let mt =
            working_set_bound(&spec(Pattern::MultiTenant { tenants: 4, s: 1.2 }).full_sequence());
        let uniform = working_set_bound(&spec(Pattern::Uniform).full_sequence());
        assert!(mt < uniform, "mt={mt} uniform={uniform}");
    }

    #[test]
    fn working_set_bounds_are_ordered_by_locality() {
        // Hot-set locality must have a far smaller W_L than uniform, which in
        // turn is no larger than the adversarial pattern.
        let hot = working_set_bound(
            &spec(Pattern::HotSet {
                hot: 8,
                miss_rate: 0.02,
            })
            .full_sequence(),
        );
        let uniform = working_set_bound(&spec(Pattern::Uniform).full_sequence());
        let adversarial = working_set_bound(&spec(Pattern::Adversarial).full_sequence());
        assert!(hot * 2 < uniform, "hot={hot} uniform={uniform}");
        assert!(
            uniform <= adversarial + adversarial / 4,
            "uniform={uniform} adv={adversarial}"
        );
    }

    #[test]
    fn zipf_skew_reduces_working_set_bound() {
        let zipf_light = working_set_bound(&spec(Pattern::Zipf(0.5)).full_sequence());
        let zipf_heavy = working_set_bound(&spec(Pattern::Zipf(1.5)).full_sequence());
        assert!(
            zipf_heavy < zipf_light,
            "heavier skew must lower W_L: {zipf_heavy} vs {zipf_light}"
        );
    }

    #[test]
    fn update_fraction_produces_mixed_ops() {
        let mut s = spec(Pattern::Uniform);
        s.update_fraction = 0.5;
        let ops = s.access_phase();
        let searches = ops
            .iter()
            .filter(|o| matches!(o, MapOpKind::Search(_)))
            .count();
        let updates = ops.len() - searches;
        assert!(updates > ops.len() / 3);
        assert!(searches > ops.len() / 3);
    }
}
