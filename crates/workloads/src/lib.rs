//! # wsm-workloads — workload generators and analysis
//!
//! The paper's evaluation is theoretical, so the reproduction validates each
//! bound on synthetic workloads whose *distribution-sensitivity* is
//! controllable:
//!
//! * [`generator`] — uniform, Zipfian, working-set (temporal locality),
//!   adversarial (always touch the least recently used key), hot-set and
//!   sequential-scan access patterns, plus mixed search/insert/delete streams.
//! * [`analysis`] — access ranks, the working-set bound `W_L`, sequence
//!   entropy and the cost of an optimal *static* search tree (for the static
//!   optimality corollary of the working-set bound).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod generator;

pub use analysis::{optimal_static_bst_cost, static_tree_cost_for, WorkloadReport};
pub use generator::{Pattern, WorkloadSpec};
