//! Workload analysis: working-set bound, entropy and static-optimal tree cost.
//!
//! The static-optimality corollary mentioned in the paper's abstract says the
//! total work of the working-set maps is bounded by the access cost of an
//! *optimal static* binary search tree built with full knowledge of the access
//! frequencies.  [`optimal_static_bst_cost`] computes a sharp lower-bound
//! proxy for that cost from the access frequencies (the entropy lower bound
//! `N·H` plus one comparison per access, which every static comparison tree
//! must pay), and [`static_tree_cost_for`] computes the exact cost of the
//! weight-balanced static tree built from the observed frequencies.

use serde::Serialize;
use std::collections::BTreeMap;
use wsm_model::{sequence_entropy, working_set_bound, MapOpKind};

/// Summary statistics of a workload, serialisable for the harness output.
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadReport {
    /// Number of operations.
    pub operations: usize,
    /// Number of distinct keys accessed.
    pub distinct_keys: usize,
    /// The working-set bound `W_L`.
    pub working_set_bound: u64,
    /// Entropy (bits) of the access-frequency distribution.
    pub entropy: f64,
    /// Cost of the optimal static BST (entropy lower-bound proxy).
    pub static_optimal_cost: f64,
}

/// Analyses an operation sequence.
pub fn report<K: Ord + Clone>(ops: &[MapOpKind<K>]) -> WorkloadReport {
    let keys: Vec<&K> = ops.iter().map(MapOpKind::key).collect();
    let distinct: BTreeMap<&K, u64> = keys.iter().fold(BTreeMap::new(), |mut m, k| {
        *m.entry(*k).or_insert(0) += 1;
        m
    });
    let entropy = sequence_entropy(&keys);
    WorkloadReport {
        operations: ops.len(),
        distinct_keys: distinct.len(),
        working_set_bound: working_set_bound(ops),
        entropy,
        static_optimal_cost: optimal_static_bst_cost(&keys),
    }
}

/// Lower-bound proxy for the cost of the optimal static BST on this access
/// sequence: `N · (H + 1)` comparisons, where `H` is the entropy of the access
/// frequencies.  Any static comparison tree costs at least this much (up to
/// constant factors), and the classical `H + 2` upper bound means it is tight.
pub fn optimal_static_bst_cost<K: Ord>(accesses: &[K]) -> f64 {
    accesses.len() as f64 * (sequence_entropy(accesses) + 1.0)
}

/// Exact total access cost of the *weight-balanced* static tree built from the
/// observed frequencies (a 2-approximation of the optimal static BST): each
/// access to key `k` costs the depth of `k` in that tree.
pub fn static_tree_cost_for<K: Ord + Clone>(accesses: &[K]) -> u64 {
    if accesses.is_empty() {
        return 0;
    }
    let mut freq: BTreeMap<K, u64> = BTreeMap::new();
    for a in accesses {
        *freq.entry(a.clone()).or_insert(0) += 1;
    }
    let items: Vec<(K, u64)> = freq.into_iter().collect();
    let mut depth: BTreeMap<K, u64> = BTreeMap::new();
    assign_depths(&items, 1, &mut depth);
    accesses.iter().map(|a| depth[a]).sum()
}

/// Recursively splits the frequency-sorted key range at the weighted median,
/// assigning each key the depth at which it becomes a subtree root.
fn assign_depths<K: Ord + Clone>(items: &[(K, u64)], depth: u64, out: &mut BTreeMap<K, u64>) {
    if items.is_empty() {
        return;
    }
    let total: u64 = items.iter().map(|(_, f)| f).sum();
    // Weighted median: the first index where the prefix weight reaches half.
    let mut acc = 0u64;
    let mut root = items.len() - 1;
    for (i, (_, f)) in items.iter().enumerate() {
        acc += f;
        if acc * 2 >= total {
            root = i;
            break;
        }
    }
    out.insert(items[root].0.clone(), depth);
    assign_depths(&items[..root], depth + 1, out);
    assign_depths(&items[root + 1..], depth + 1, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tree_cost_single_key() {
        let accesses = vec![5u64; 100];
        // One key: depth 1, so cost = 100.
        assert_eq!(static_tree_cost_for(&accesses), 100);
    }

    #[test]
    fn static_tree_favours_frequent_keys() {
        // Key 0 accessed 1000 times, keys 1..=15 accessed once each: key 0
        // must sit near the root, so the total cost is close to the number of
        // accesses.
        let mut accesses = vec![0u64; 1000];
        accesses.extend(1..16u64);
        let cost = static_tree_cost_for(&accesses);
        assert!(cost < 2 * 1000 + 16 * 6, "cost {cost} too high");
        // A balanced tree over 16 keys has depth ~5, so a frequency-oblivious
        // tree would pay ~4000.
        assert!(cost < 3500);
    }

    #[test]
    fn static_tree_cost_uniform_matches_log() {
        let accesses: Vec<u64> = (0..1024u64).collect();
        let cost = static_tree_cost_for(&accesses);
        // Uniform frequencies: average depth ~ log2(1024) = 10 (within a
        // factor of ~1.5 for the weighted-median construction).
        let avg = cost as f64 / 1024.0;
        assert!((8.0..=16.0).contains(&avg), "average depth {avg}");
    }

    #[test]
    fn report_summarises_sequence() {
        let ops: Vec<MapOpKind<u64>> = (0..64)
            .map(MapOpKind::Insert)
            .chain((0..64).map(|_| MapOpKind::Search(0)))
            .collect();
        let r = report(&ops);
        assert_eq!(r.operations, 128);
        assert_eq!(r.distinct_keys, 64);
        assert!(r.working_set_bound > 0);
        assert!(r.entropy > 0.0);
        assert!(r.static_optimal_cost > 0.0);
    }

    #[test]
    fn optimal_static_cost_is_entropy_scaled() {
        let skewed = vec![1u64; 1000];
        let uniform: Vec<u64> = (0..1000).collect();
        assert!(optimal_static_bst_cost(&skewed) < optimal_static_bst_cost(&uniform));
    }
}
